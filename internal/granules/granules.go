// Package granules reproduces the Granules cloud runtime (Pallickara et
// al., IEEE CLUSTER 2009) at the fidelity NEPTUNE requires. Granules is
// the substrate the paper builds on: it orchestrates a set of machines,
// each hosting one or more resources that act as containers for
// computational tasks; tasks access data through datasets and are
// scheduled to run by pluggable scheduling strategies (data-driven,
// periodic, count-based, or combinations).
package granules

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Task is the most fine-grained unit of execution in the Granules runtime.
// A task encapsulates domain-specific logic to process fine-grained units
// of data (a packet, a file, a record). The runtime guarantees that Init
// is called once before the first Execute, that Execute calls for one task
// never overlap, and that Close is called exactly once at termination.
type Task interface {
	// ID returns the task's unique identifier within its resource.
	ID() string
	// Init prepares the task. It runs on a worker goroutine.
	Init(rc *RunContext) error
	// Execute performs one scheduled execution.
	Execute(rc *RunContext) error
	// Close releases the task's resources.
	Close() error
}

// RunContext carries per-execution state into a task.
type RunContext struct {
	resource *Resource
	taskID   string
}

// Resource returns the container the task runs in.
func (rc *RunContext) Resource() *Resource { return rc.resource }

// TaskID returns the executing task's id.
func (rc *RunContext) TaskID() string { return rc.taskID }

// Metrics returns the resource-wide metric registry.
func (rc *RunContext) Metrics() *metrics.Registry { return rc.resource.Metrics() }

// Strategy decides when a task is scheduled to run. The paper's Granules
// supports data-driven, periodic and count-based strategies, possibly
// combined, and the strategy can be changed during execution.
type Strategy interface {
	// OnData is consulted on each data-availability notification and
	// reports whether the task should be scheduled now.
	OnData(notifications uint64) bool
	// Interval returns the periodic scheduling interval, or 0 when the
	// strategy has no periodic component.
	Interval() time.Duration
}

// DataDriven schedules the task on every data-availability notification.
type DataDriven struct{}

// OnData always schedules.
func (DataDriven) OnData(uint64) bool { return true }

// Interval reports no periodic component.
func (DataDriven) Interval() time.Duration { return 0 }

// Periodic schedules the task every Every duration, ignoring data
// notifications.
type Periodic struct {
	// Every is the scheduling period.
	Every time.Duration
}

// OnData never schedules on data.
func (Periodic) OnData(uint64) bool { return false }

// Interval returns the period.
func (p Periodic) Interval() time.Duration { return p.Every }

// CountBased schedules the task on every N-th data notification.
type CountBased struct {
	// N is the notification count between executions (minimum 1).
	N uint64
}

// OnData schedules on multiples of N.
func (c CountBased) OnData(n uint64) bool {
	step := c.N
	if step == 0 {
		step = 1
	}
	return n%step == 0
}

// Interval reports no periodic component.
func (CountBased) Interval() time.Duration { return 0 }

// Combined merges a data-triggered strategy with a periodic interval, e.g.
// "run when data is available or at least every 500 ms".
type Combined struct {
	// Data is the data-triggered component (nil means never on data).
	Data Strategy
	// Every is the periodic component (0 means never periodic).
	Every time.Duration
}

// OnData delegates to the data component.
func (c Combined) OnData(n uint64) bool {
	if c.Data == nil {
		return false
	}
	return c.Data.OnData(n)
}

// Interval returns the periodic component.
func (c Combined) Interval() time.Duration { return c.Every }

// Resource errors.
var (
	ErrDuplicateTask  = errors.New("granules: duplicate task id")
	ErrUnknownTask    = errors.New("granules: unknown task")
	ErrNotDeployed    = errors.New("granules: resource not deployed")
	ErrAlreadyRunning = errors.New("granules: resource already deployed")
	ErrTerminated     = errors.New("granules: resource terminated")
)

// Per-task scheduling states. The state machine replaces the old
// mutex-guarded running/pending pair so every scheduling transition is one
// atomic CAS and the hot path never touches a lock:
//
//	idle ──schedule──▶ queued ──worker pop──▶ running ──done──▶ idle
//	                     │                      │  ▲
//	             schedule│              schedule│  │resubmit (preemption)
//	                     ▼                      ▼  │
//	              queuedPending ──pop──▶ runningPending
//
// A notification while queued or running marks the task pending: after the
// execution the worker resubmits it once, so a burst coalesces into at
// most one follow-up run (the old mutex-guarded running/pending semantics,
// preserved exactly). The invariant: a task has at most one entry across
// all run queues, exactly while state is queued or queuedPending.
const (
	taskIdle uint32 = iota
	taskQueued
	taskQueuedPending
	taskRunning
	taskRunningPending
)

// taskState tracks per-task scheduling so one task never executes on two
// workers concurrently. Hot fields (state, notifications, strategy) are
// atomic; ts.mu guards only the cold fields (last error, periodic ticker).
type taskState struct {
	task Task
	rc   RunContext // reused across executions (they never overlap)

	state         atomic.Uint32
	notifications atomic.Uint64
	executions    atomic.Uint64
	strategy      atomic.Pointer[Strategy] // may be swapped at runtime

	mu         sync.Mutex
	lastErr    error
	ticker     *time.Ticker
	tickerStop chan struct{}
}

// Resource is a container for computational tasks at a single machine. It
// owns the worker pool on which tasks execute and manages task lifecycles.
// Scheduling state is contention-free: the task table is copy-on-write
// (registration is rare, notification is per-packet), lifecycle flags are
// atomic, and the run queue is sharded per worker with work stealing —
// r.mu serializes only registration, deployment, and termination.
type Resource struct {
	name    string
	workers int

	mu    sync.Mutex                            // serializes registration/deploy/terminate
	tasks atomic.Pointer[map[string]*taskState] //neptune:cow task table

	deployed atomic.Bool
	term     atomic.Bool

	sched    *sched
	wg       sync.WaitGroup
	switches *metrics.ContextSwitchAccount
	reg      *metrics.Registry

	// ErrorHandler receives task execution errors; nil means errors are
	// recorded on the task and counted but otherwise ignored, matching a
	// long-running container that must survive bad input.
	ErrorHandler func(taskID string, err error)
}

// NewResource creates a resource named name with the given worker pool
// size. workers <= 0 selects runtime.NumCPU(), the paper's default
// ("thread pool sizes are determined automatically depending on the number
// of cores").
func NewResource(name string, workers int) *Resource {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	r := &Resource{
		name:     name,
		workers:  workers,
		switches: &metrics.ContextSwitchAccount{},
		reg:      metrics.NewRegistry(nil),
	}
	empty := make(map[string]*taskState)
	r.tasks.Store(&empty)
	return r
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Workers returns the worker pool size.
func (r *Resource) Workers() int { return r.workers }

// Metrics returns the resource's metric registry.
func (r *Resource) Metrics() *metrics.Registry { return r.reg }

// Switches exposes the context-switch accounting used by Table I.
func (r *Resource) Switches() *metrics.ContextSwitchAccount { return r.switches }

// task looks ts up in the copy-on-write table without locking.
func (r *Resource) task(id string) *taskState {
	return (*r.tasks.Load())[id]
}

// storeTask copies the task table with ts added (or removed when ts is
// nil). Caller holds r.mu.
func (r *Resource) storeTask(id string, ts *taskState) {
	old := *r.tasks.Load()
	next := make(map[string]*taskState, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	if ts == nil {
		delete(next, id)
	} else {
		next[id] = ts
	}
	r.tasks.Store(&next)
}

// Register adds a task with its scheduling strategy. Tasks may be
// registered before or after Deploy; Init runs on first deployment or
// immediately (on the caller) if already deployed.
func (r *Resource) Register(task Task, strategy Strategy) error {
	if strategy == nil {
		strategy = DataDriven{}
	}
	r.mu.Lock()
	if r.term.Load() {
		r.mu.Unlock()
		return ErrTerminated
	}
	if r.task(task.ID()) != nil {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrDuplicateTask, task.ID())
	}
	ts := &taskState{task: task}
	ts.rc = RunContext{resource: r, taskID: task.ID()}
	ts.strategy.Store(&strategy)
	r.storeTask(task.ID(), ts)
	deployed := r.deployed.Load()
	r.mu.Unlock()

	if deployed {
		if err := task.Init(&RunContext{resource: r, taskID: task.ID()}); err != nil {
			r.mu.Lock()
			r.storeTask(task.ID(), nil)
			r.mu.Unlock()
			return err
		}
		r.startTickerIfPeriodic(ts)
	}
	return nil
}

// Deploy initializes all registered tasks and starts the worker pool.
func (r *Resource) Deploy() error {
	r.mu.Lock()
	if r.term.Load() {
		r.mu.Unlock()
		return ErrTerminated
	}
	if r.deployed.Load() {
		r.mu.Unlock()
		return ErrAlreadyRunning
	}
	r.sched = newSched(r, r.workers)
	r.deployed.Store(true)
	table := *r.tasks.Load()
	tasks := make([]*taskState, 0, len(table))
	for _, ts := range table {
		tasks = append(tasks, ts)
	}
	r.mu.Unlock()

	for _, ts := range tasks {
		if err := ts.task.Init(&RunContext{resource: r, taskID: ts.task.ID()}); err != nil {
			return fmt.Errorf("granules: init %q: %w", ts.task.ID(), err)
		}
	}
	for i := 0; i < r.workers; i++ {
		r.wg.Add(1)
		go r.worker(i)
	}
	for _, ts := range tasks {
		r.startTickerIfPeriodic(ts)
	}
	return nil
}

func (r *Resource) startTickerIfPeriodic(ts *taskState) {
	iv := (*ts.strategy.Load()).Interval()
	ts.mu.Lock()
	// The term check must sit under ts.mu: Terminate stores term before
	// sweeping tickers under the same lock, so either this call finishes
	// first and the sweep stops the new ticker, or it observes term and
	// starts nothing. Without it a SetStrategy/Register racing Terminate
	// can start a ticker goroutine that nothing ever stops.
	if iv <= 0 || ts.ticker != nil || r.term.Load() {
		ts.mu.Unlock()
		return
	}
	ts.ticker = time.NewTicker(iv)
	ts.tickerStop = make(chan struct{})
	ticker, stop := ts.ticker, ts.tickerStop
	ts.mu.Unlock()
	go func() {
		for {
			select {
			case <-ticker.C:
				r.schedule(ts)
			case <-stop:
				return
			}
		}
	}()
}

// worker is the body of one worker-pool goroutine: drain the own shard,
// fall back to the overflow spill and to stealing, park when everything
// is dry.
//
//neptune:hotpath
func (r *Resource) worker(id int) {
	defer r.wg.Done()
	s := r.sched
	w := &workerPark{wake: make(chan struct{}, 1)}
	rng := uint64(id)*0x9E3779B97F4A7C15 + 1
	stealBuf := make([]*taskState, 0, shardCap/2)
	for {
		select {
		case <-s.done:
			return
		default:
		}
		ts := s.next(id, &rng, &stealBuf)
		if ts == nil {
			// Park protocol: enlist as idle, re-check for work published
			// concurrently, then block on the wake token. A submitter who
			// popped us off the idle list between the re-check and the
			// remove will deliver a token; absorbing it here keeps stale
			// tokens from accumulating (a missed one costs at most a
			// single spurious wakeup later).
			s.idle.push(w)
			ts = s.next(id, &rng, &stealBuf)
			if ts == nil {
				select {
				case <-w.wake:
				case <-s.done:
					return
				}
				continue
			}
			if !s.idle.remove(w) {
				select {
				case <-w.wake:
				default:
				}
			}
		}
		r.execute(ts, id)
	}
}

// execute runs one scheduled execution of a task and reschedules it if
// notifications arrived meanwhile.
//
//neptune:hotpath
func (r *Resource) execute(ts *taskState, workerID int) {
	// The popper owns the queued→running transition; a failed CAS means
	// notifications arrived between submit and pop, so the pending mark
	// carries over into the running state.
	if !ts.state.CompareAndSwap(taskQueued, taskRunning) {
		ts.state.Store(taskRunningPending) // from taskQueuedPending
	}
	err := r.runTask(ts)
	ts.executions.Add(1)
	if err != nil {
		r.reg.Counter("task_errors").Inc()
		ts.mu.Lock()
		ts.lastErr = err
		ts.mu.Unlock()
		if r.ErrorHandler != nil {
			r.ErrorHandler(ts.task.ID(), err)
		}
	}
	if ts.state.CompareAndSwap(taskRunning, taskIdle) {
		return
	}
	// Notifications arrived mid-execution (state is runningPending): the
	// task yields the worker with work still pending — a
	// preemption-equivalent — and goes back on this worker's own shard.
	ts.state.Store(taskQueued)
	r.switches.CountPreemption()
	r.sched.submit(ts, workerID)
}

// runTask runs one task invocation, converting panics into errors. It is
// a named method rather than a literal inside execute so the hot path
// does not build a capturing closure per execution; the deferred recover
// here is open-coded by the compiler and stays on the stack.
func (r *Resource) runTask(ts *taskState) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("granules: task %q panicked: %v", ts.task.ID(), p)
		}
	}()
	return ts.task.Execute(&ts.rc)
}

// schedule requests one execution of ts, coalescing with any execution
// already queued or in flight. It is lock-free: a CAS on the task's state
// machine, plus a sharded queue push only on the idle→queued edge.
//
//neptune:hotpath
func (r *Resource) schedule(ts *taskState) {
	for {
		switch ts.state.Load() {
		case taskIdle:
			if ts.state.CompareAndSwap(taskIdle, taskQueued) {
				r.sched.submit(ts, -1)
				return
			}
		case taskQueued:
			if ts.state.CompareAndSwap(taskQueued, taskQueuedPending) {
				return
			}
		case taskRunning:
			if ts.state.CompareAndSwap(taskRunning, taskRunningPending) {
				return
			}
		case taskQueuedPending, taskRunningPending:
			return
		}
	}
}

// NotifyData signals that data became available for the given task; the
// task's strategy decides whether this triggers an execution. Datasets
// call this from IO goroutines; the whole path — lifecycle checks, task
// lookup, notification count, strategy consult — is lock-free.
//
//neptune:hotpath
func (r *Resource) NotifyData(taskID string) error {
	if !r.deployed.Load() {
		return ErrNotDeployed
	}
	if r.term.Load() {
		return ErrTerminated
	}
	ts := r.task(taskID)
	if ts == nil {
		return fmt.Errorf("%w: %q", ErrUnknownTask, taskID)
	}
	n := ts.notifications.Add(1)
	if (*ts.strategy.Load()).OnData(n) {
		r.schedule(ts)
	}
	return nil
}

// SetStrategy swaps a task's scheduling strategy at runtime (a Granules
// capability the paper calls out). Periodic tickers are restarted to match.
func (r *Resource) SetStrategy(taskID string, s Strategy) error {
	if s == nil {
		return errors.New("granules: nil strategy")
	}
	ts := r.task(taskID)
	if ts == nil {
		return fmt.Errorf("%w: %q", ErrUnknownTask, taskID)
	}
	ts.strategy.Store(&s)
	// Stop any existing ticker; restart below if the new strategy is
	// periodic and the resource is live.
	ts.mu.Lock()
	if ts.ticker != nil {
		ts.ticker.Stop()
		close(ts.tickerStop)
		ts.ticker = nil
		ts.tickerStop = nil
	}
	ts.mu.Unlock()
	if r.deployed.Load() {
		r.startTickerIfPeriodic(ts)
	}
	return nil
}

// Executions reports how many times the task has executed.
func (r *Resource) Executions(taskID string) (uint64, error) {
	ts := r.task(taskID)
	if ts == nil {
		return 0, fmt.Errorf("%w: %q", ErrUnknownTask, taskID)
	}
	return ts.executions.Load(), nil
}

// LastError reports the most recent execution error of the task (nil when
// none).
func (r *Resource) LastError(taskID string) (error, error) {
	ts := r.task(taskID)
	if ts == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTask, taskID)
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.lastErr, nil
}

// TaskIDs returns the ids of all registered tasks.
func (r *Resource) TaskIDs() []string {
	table := *r.tasks.Load()
	ids := make([]string, 0, len(table))
	for id := range table {
		ids = append(ids, id)
	}
	return ids
}

// Quiesce blocks until no task is running or pending, or until timeout. It
// reports whether quiescence was reached. Useful for drain-then-terminate
// shutdown and for tests. A task holds state != idle exactly while it is
// queued or executing, so all-idle implies every run queue is empty.
func (r *Resource) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		busy := false
		for _, ts := range *r.tasks.Load() {
			if ts.state.Load() != taskIdle {
				busy = true
				break
			}
		}
		if !busy {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Terminate stops the worker pool, stops periodic tickers, and closes all
// tasks. It blocks until in-flight executions finish.
func (r *Resource) Terminate() error {
	tasks, stopped := r.stop()
	if !stopped {
		return nil
	}
	var firstErr error
	for _, ts := range tasks {
		if err := ts.task.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Kill terminates the resource the way a process crash would: the worker
// pool and tickers stop (so goroutines do not leak from a test-injected
// crash), but task Close hooks never run — whatever state a task held is
// abandoned exactly as if the host process had died. Recovery supervisors
// use this to simulate losing a resource. Like Terminate it blocks until
// in-flight executions finish; unlike a real crash, executions are not
// interrupted mid-run (Go cannot preempt arbitrary code safely).
func (r *Resource) Kill() {
	r.stop()
}

// stop performs the shared Terminate/Kill shutdown — mark terminated,
// stop tickers, stop workers — and returns the task list plus whether
// this call won the termination race.
func (r *Resource) stop() ([]*taskState, bool) {
	r.mu.Lock()
	if r.term.Load() {
		r.mu.Unlock()
		// The racing Terminate/Kill that won may still be joining the
		// workers. Wait for them here too, so that EVERY stop caller
		// returns only after the workers are gone — the supervisor's
		// idempotent re-crash during recovery relies on this edge to
		// order the dead workers' last reads before it rewires the
		// instances for redeploy.
		r.wg.Wait()
		return nil, false
	}
	r.term.Store(true)
	deployed := r.deployed.Load()
	table := *r.tasks.Load()
	tasks := make([]*taskState, 0, len(table))
	for _, ts := range table {
		tasks = append(tasks, ts)
	}
	r.mu.Unlock()

	for _, ts := range tasks {
		ts.mu.Lock()
		if ts.ticker != nil {
			ts.ticker.Stop()
			close(ts.tickerStop)
			ts.ticker = nil
			ts.tickerStop = nil
		}
		ts.mu.Unlock()
	}
	if deployed {
		close(r.sched.done)
		r.sched.drainIdle()
		r.wg.Wait()
	}
	return tasks, true
}
