// Package granules reproduces the Granules cloud runtime (Pallickara et
// al., IEEE CLUSTER 2009) at the fidelity NEPTUNE requires. Granules is
// the substrate the paper builds on: it orchestrates a set of machines,
// each hosting one or more resources that act as containers for
// computational tasks; tasks access data through datasets and are
// scheduled to run by pluggable scheduling strategies (data-driven,
// periodic, count-based, or combinations).
package granules

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Task is the most fine-grained unit of execution in the Granules runtime.
// A task encapsulates domain-specific logic to process fine-grained units
// of data (a packet, a file, a record). The runtime guarantees that Init
// is called once before the first Execute, that Execute calls for one task
// never overlap, and that Close is called exactly once at termination.
type Task interface {
	// ID returns the task's unique identifier within its resource.
	ID() string
	// Init prepares the task. It runs on a worker goroutine.
	Init(rc *RunContext) error
	// Execute performs one scheduled execution.
	Execute(rc *RunContext) error
	// Close releases the task's resources.
	Close() error
}

// RunContext carries per-execution state into a task.
type RunContext struct {
	resource *Resource
	taskID   string
}

// Resource returns the container the task runs in.
func (rc *RunContext) Resource() *Resource { return rc.resource }

// TaskID returns the executing task's id.
func (rc *RunContext) TaskID() string { return rc.taskID }

// Metrics returns the resource-wide metric registry.
func (rc *RunContext) Metrics() *metrics.Registry { return rc.resource.Metrics() }

// Strategy decides when a task is scheduled to run. The paper's Granules
// supports data-driven, periodic and count-based strategies, possibly
// combined, and the strategy can be changed during execution.
type Strategy interface {
	// OnData is consulted on each data-availability notification and
	// reports whether the task should be scheduled now.
	OnData(notifications uint64) bool
	// Interval returns the periodic scheduling interval, or 0 when the
	// strategy has no periodic component.
	Interval() time.Duration
}

// DataDriven schedules the task on every data-availability notification.
type DataDriven struct{}

// OnData always schedules.
func (DataDriven) OnData(uint64) bool { return true }

// Interval reports no periodic component.
func (DataDriven) Interval() time.Duration { return 0 }

// Periodic schedules the task every Every duration, ignoring data
// notifications.
type Periodic struct {
	// Every is the scheduling period.
	Every time.Duration
}

// OnData never schedules on data.
func (Periodic) OnData(uint64) bool { return false }

// Interval returns the period.
func (p Periodic) Interval() time.Duration { return p.Every }

// CountBased schedules the task on every N-th data notification.
type CountBased struct {
	// N is the notification count between executions (minimum 1).
	N uint64
}

// OnData schedules on multiples of N.
func (c CountBased) OnData(n uint64) bool {
	step := c.N
	if step == 0 {
		step = 1
	}
	return n%step == 0
}

// Interval reports no periodic component.
func (CountBased) Interval() time.Duration { return 0 }

// Combined merges a data-triggered strategy with a periodic interval, e.g.
// "run when data is available or at least every 500 ms".
type Combined struct {
	// Data is the data-triggered component (nil means never on data).
	Data Strategy
	// Every is the periodic component (0 means never periodic).
	Every time.Duration
}

// OnData delegates to the data component.
func (c Combined) OnData(n uint64) bool {
	if c.Data == nil {
		return false
	}
	return c.Data.OnData(n)
}

// Interval returns the periodic component.
func (c Combined) Interval() time.Duration { return c.Every }

// Resource errors.
var (
	ErrDuplicateTask  = errors.New("granules: duplicate task id")
	ErrUnknownTask    = errors.New("granules: unknown task")
	ErrNotDeployed    = errors.New("granules: resource not deployed")
	ErrAlreadyRunning = errors.New("granules: resource already deployed")
	ErrTerminated     = errors.New("granules: resource terminated")
)

// taskState tracks per-task scheduling so one task never executes on two
// workers concurrently: a notification arriving mid-execution marks the
// task pending and it is rescheduled as soon as the execution finishes.
type taskState struct {
	task     Task
	strategy Strategy

	mu            sync.Mutex
	strategyLive  Strategy // may be swapped at runtime
	running       bool
	pending       bool
	notifications uint64
	executions    atomic.Uint64
	lastErr       error
	ticker        *time.Ticker
	tickerStop    chan struct{}
}

// Resource is a container for computational tasks at a single machine. It
// owns the worker pool on which tasks execute and manages task lifecycles.
type Resource struct {
	name    string
	workers int

	mu       sync.Mutex
	tasks    map[string]*taskState
	deployed bool
	term     bool

	runq     chan *taskState
	done     chan struct{} // closed at Terminate; workers and submitters select on it
	wg       sync.WaitGroup
	idle     atomic.Int64 // workers parked waiting for work
	switches *metrics.ContextSwitchAccount
	reg      *metrics.Registry

	// ErrorHandler receives task execution errors; nil means errors are
	// recorded on the task and counted but otherwise ignored, matching a
	// long-running container that must survive bad input.
	ErrorHandler func(taskID string, err error)
}

// NewResource creates a resource named name with the given worker pool
// size. workers <= 0 selects runtime.NumCPU(), the paper's default
// ("thread pool sizes are determined automatically depending on the number
// of cores").
func NewResource(name string, workers int) *Resource {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Resource{
		name:     name,
		workers:  workers,
		tasks:    make(map[string]*taskState),
		switches: &metrics.ContextSwitchAccount{},
		reg:      metrics.NewRegistry(nil),
	}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Workers returns the worker pool size.
func (r *Resource) Workers() int { return r.workers }

// Metrics returns the resource's metric registry.
func (r *Resource) Metrics() *metrics.Registry { return r.reg }

// Switches exposes the context-switch accounting used by Table I.
func (r *Resource) Switches() *metrics.ContextSwitchAccount { return r.switches }

// Register adds a task with its scheduling strategy. Tasks may be
// registered before or after Deploy; Init runs on first deployment or
// immediately (on the caller) if already deployed.
func (r *Resource) Register(task Task, strategy Strategy) error {
	if strategy == nil {
		strategy = DataDriven{}
	}
	r.mu.Lock()
	if r.term {
		r.mu.Unlock()
		return ErrTerminated
	}
	if _, dup := r.tasks[task.ID()]; dup {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrDuplicateTask, task.ID())
	}
	ts := &taskState{task: task, strategy: strategy, strategyLive: strategy}
	r.tasks[task.ID()] = ts
	deployed := r.deployed
	r.mu.Unlock()

	if deployed {
		if err := task.Init(&RunContext{resource: r, taskID: task.ID()}); err != nil {
			r.mu.Lock()
			delete(r.tasks, task.ID())
			r.mu.Unlock()
			return err
		}
		r.startTickerIfPeriodic(ts)
	}
	return nil
}

// Deploy initializes all registered tasks and starts the worker pool.
func (r *Resource) Deploy() error {
	r.mu.Lock()
	if r.term {
		r.mu.Unlock()
		return ErrTerminated
	}
	if r.deployed {
		r.mu.Unlock()
		return ErrAlreadyRunning
	}
	r.deployed = true
	r.runq = make(chan *taskState, 1024)
	r.done = make(chan struct{})
	tasks := make([]*taskState, 0, len(r.tasks))
	for _, ts := range r.tasks {
		tasks = append(tasks, ts)
	}
	r.mu.Unlock()

	for _, ts := range tasks {
		if err := ts.task.Init(&RunContext{resource: r, taskID: ts.task.ID()}); err != nil {
			return fmt.Errorf("granules: init %q: %w", ts.task.ID(), err)
		}
	}
	for i := 0; i < r.workers; i++ {
		r.wg.Add(1)
		go r.worker()
	}
	for _, ts := range tasks {
		r.startTickerIfPeriodic(ts)
	}
	return nil
}

func (r *Resource) startTickerIfPeriodic(ts *taskState) {
	ts.mu.Lock()
	iv := ts.strategyLive.Interval()
	if iv <= 0 || ts.ticker != nil {
		ts.mu.Unlock()
		return
	}
	ts.ticker = time.NewTicker(iv)
	ts.tickerStop = make(chan struct{})
	ticker, stop := ts.ticker, ts.tickerStop
	ts.mu.Unlock()
	go func() {
		for {
			select {
			case <-ticker.C:
				r.schedule(ts)
			case <-stop:
				return
			}
		}
	}()
}

// worker is the body of one worker-pool goroutine.
func (r *Resource) worker() {
	defer r.wg.Done()
	for {
		r.idle.Add(1)
		select {
		case ts := <-r.runq:
			r.idle.Add(-1)
			r.execute(ts)
		case <-r.done:
			r.idle.Add(-1)
			return
		}
	}
}

// execute runs one scheduled execution of a task and reschedules it if
// notifications arrived meanwhile.
func (r *Resource) execute(ts *taskState) {
	rc := &RunContext{resource: r, taskID: ts.task.ID()}
	err := func() (err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("granules: task %q panicked: %v", ts.task.ID(), p)
			}
		}()
		return ts.task.Execute(rc)
	}()
	ts.executions.Add(1)
	if err != nil {
		r.reg.Counter("task_errors").Inc()
		ts.mu.Lock()
		ts.lastErr = err
		ts.mu.Unlock()
		if r.ErrorHandler != nil {
			r.ErrorHandler(ts.task.ID(), err)
		}
	}
	ts.mu.Lock()
	if ts.pending {
		ts.pending = false
		ts.mu.Unlock()
		// Re-submission is a preemption-equivalent: the task yielded the
		// worker with work still pending.
		r.switches.CountPreemption()
		r.submit(ts)
		return
	}
	ts.running = false
	ts.mu.Unlock()
}

// submit places a task on the run queue, counting a context-switch
// equivalent when an idle worker will be woken to take it.
func (r *Resource) submit(ts *taskState) {
	if r.idle.Load() > 0 {
		r.switches.CountWakeup()
	}
	r.switches.CountHandoff()
	select {
	case r.runq <- ts:
	case <-r.done:
	}
}

// schedule requests one execution of ts, coalescing with any execution
// already in flight.
func (r *Resource) schedule(ts *taskState) {
	ts.mu.Lock()
	if ts.running {
		ts.pending = true
		ts.mu.Unlock()
		return
	}
	ts.running = true
	ts.mu.Unlock()
	r.submit(ts)
}

// NotifyData signals that data became available for the given task; the
// task's strategy decides whether this triggers an execution. Datasets
// call this from IO goroutines.
func (r *Resource) NotifyData(taskID string) error {
	r.mu.Lock()
	if !r.deployed {
		r.mu.Unlock()
		return ErrNotDeployed
	}
	if r.term {
		r.mu.Unlock()
		return ErrTerminated
	}
	ts, ok := r.tasks[taskID]
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTask, taskID)
	}
	ts.mu.Lock()
	ts.notifications++
	n := ts.notifications
	strat := ts.strategyLive
	ts.mu.Unlock()
	if strat.OnData(n) {
		r.schedule(ts)
	}
	return nil
}

// SetStrategy swaps a task's scheduling strategy at runtime (a Granules
// capability the paper calls out). Periodic tickers are restarted to match.
func (r *Resource) SetStrategy(taskID string, s Strategy) error {
	if s == nil {
		return errors.New("granules: nil strategy")
	}
	r.mu.Lock()
	ts, ok := r.tasks[taskID]
	deployed := r.deployed
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTask, taskID)
	}
	ts.mu.Lock()
	ts.strategyLive = s
	// Stop any existing ticker; restart below if the new strategy is
	// periodic and the resource is live.
	if ts.ticker != nil {
		ts.ticker.Stop()
		close(ts.tickerStop)
		ts.ticker = nil
		ts.tickerStop = nil
	}
	ts.mu.Unlock()
	if deployed {
		r.startTickerIfPeriodic(ts)
	}
	return nil
}

// Executions reports how many times the task has executed.
func (r *Resource) Executions(taskID string) (uint64, error) {
	r.mu.Lock()
	ts, ok := r.tasks[taskID]
	r.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownTask, taskID)
	}
	return ts.executions.Load(), nil
}

// LastError reports the most recent execution error of the task (nil when
// none).
func (r *Resource) LastError(taskID string) (error, error) {
	r.mu.Lock()
	ts, ok := r.tasks[taskID]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTask, taskID)
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.lastErr, nil
}

// TaskIDs returns the ids of all registered tasks.
func (r *Resource) TaskIDs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := make([]string, 0, len(r.tasks))
	for id := range r.tasks {
		ids = append(ids, id)
	}
	return ids
}

// Quiesce blocks until no task is running or pending, or until timeout. It
// reports whether quiescence was reached. Useful for drain-then-terminate
// shutdown and for tests.
func (r *Resource) Quiesce(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		busy := false
		r.mu.Lock()
		for _, ts := range r.tasks {
			ts.mu.Lock()
			if ts.running || ts.pending {
				busy = true
			}
			ts.mu.Unlock()
			if busy {
				break
			}
		}
		r.mu.Unlock()
		if !busy && len(r.runq) == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// Terminate stops the worker pool, stops periodic tickers, and closes all
// tasks. It blocks until in-flight executions finish.
func (r *Resource) Terminate() error {
	r.mu.Lock()
	if r.term {
		r.mu.Unlock()
		return nil
	}
	r.term = true
	deployed := r.deployed
	tasks := make([]*taskState, 0, len(r.tasks))
	for _, ts := range r.tasks {
		tasks = append(tasks, ts)
	}
	r.mu.Unlock()

	for _, ts := range tasks {
		ts.mu.Lock()
		if ts.ticker != nil {
			ts.ticker.Stop()
			close(ts.tickerStop)
			ts.ticker = nil
			ts.tickerStop = nil
		}
		ts.mu.Unlock()
	}
	if deployed {
		close(r.done)
		r.wg.Wait()
	}
	var firstErr error
	for _, ts := range tasks {
		if err := ts.task.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
