package granules

import (
	"sync"
	"sync/atomic"
)

// The scheduler behind a Resource's worker pool. Instead of one shared run
// queue — whose channel lock every producer and every worker hammers — each
// worker owns a bounded ring deque. Submitters spread tasks across the
// rings round-robin (or straight into the submitting worker's own ring on
// reschedule), workers drain their own ring first and steal half of a
// random victim's ring when it runs dry, and an overflow spill list absorbs
// bursts that outrun every ring. Parked workers sit on an idle list and are
// unparked one per submission, which is also where the context-switch
// accounting of Table I observes its wakeups.

// shardCap is each ring's capacity (power of two). Steals take at most
// half a ring, so anything stolen always fits the thief's empty ring.
const shardCap = 256

// ringShard is one worker's run deque: a fixed ring guarded by its own
// lock. The lock is per-shard, so submitters contend only when they pick
// the same shard, not on every scheduling event.
type ringShard struct {
	mu   sync.Mutex
	buf  [shardCap]*taskState
	head uint32
	tail uint32
}

// push appends ts; it reports false when the ring is full.
func (s *ringShard) push(ts *taskState) bool {
	s.mu.Lock()
	if s.tail-s.head == shardCap {
		s.mu.Unlock()
		return false
	}
	s.buf[s.tail%shardCap] = ts
	s.tail++
	s.mu.Unlock()
	return true
}

// pop removes the oldest task, or nil when empty.
func (s *ringShard) pop() *taskState {
	s.mu.Lock()
	if s.tail == s.head {
		s.mu.Unlock()
		return nil
	}
	ts := s.buf[s.head%shardCap]
	s.buf[s.head%shardCap] = nil
	s.head++
	s.mu.Unlock()
	return ts
}

// stealHalf moves the older half of the ring into buf and returns it.
func (s *ringShard) stealHalf(buf []*taskState) []*taskState {
	s.mu.Lock()
	n := s.tail - s.head
	if n == 0 {
		s.mu.Unlock()
		return buf
	}
	k := (n + 1) / 2
	for i := uint32(0); i < k; i++ {
		idx := s.head % shardCap
		buf = append(buf, s.buf[idx])
		s.buf[idx] = nil
		s.head++
	}
	s.mu.Unlock()
	return buf
}

// len reports the queued count (approximate once the lock is released).
func (s *ringShard) len() int {
	s.mu.Lock()
	n := int(s.tail - s.head)
	s.mu.Unlock()
	return n
}

// overflowQueue is the unbounded FIFO spill for submissions that found
// every ring full. It is off the hot path: rings absorb the steady state.
type overflowQueue struct {
	mu    sync.Mutex
	items []*taskState
	head  int
}

func (q *overflowQueue) push(ts *taskState) {
	q.mu.Lock()
	q.items = append(q.items, ts)
	q.mu.Unlock()
}

func (q *overflowQueue) pop() *taskState {
	q.mu.Lock()
	if q.head == len(q.items) {
		q.mu.Unlock()
		return nil
	}
	ts := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	q.mu.Unlock()
	return ts
}

func (q *overflowQueue) len() int {
	q.mu.Lock()
	n := len(q.items) - q.head
	q.mu.Unlock()
	return n
}

// workerPark is one worker's parking token. wake is buffered so an unpark
// never blocks the submitter; a stale token at worst causes one spurious
// wakeup, never a lost one.
type workerPark struct {
	wake chan struct{}
}

// idleList holds parked workers LIFO (the most recently parked worker has
// the warmest cache). Push/pop/remove are a few instructions under one
// small lock touched only when workers actually run out of work.
type idleList struct {
	mu     sync.Mutex
	parked []*workerPark
}

func (l *idleList) push(w *workerPark) {
	l.mu.Lock()
	l.parked = append(l.parked, w)
	l.mu.Unlock()
}

func (l *idleList) pop() *workerPark {
	l.mu.Lock()
	n := len(l.parked)
	if n == 0 {
		l.mu.Unlock()
		return nil
	}
	w := l.parked[n-1]
	l.parked[n-1] = nil
	l.parked = l.parked[:n-1]
	l.mu.Unlock()
	return w
}

// remove takes w off the list; it reports false when a submitter already
// popped (and is about to wake) it.
func (l *idleList) remove(w *workerPark) bool {
	l.mu.Lock()
	for i, p := range l.parked {
		if p == w {
			last := len(l.parked) - 1
			l.parked[i] = l.parked[last]
			l.parked[last] = nil
			l.parked = l.parked[:last]
			l.mu.Unlock()
			return true
		}
	}
	l.mu.Unlock()
	return false
}

// sched ties the shards, spill, and idle list together for one Resource.
type sched struct {
	res      *Resource
	shards   []ringShard
	overflow overflowQueue
	idle     idleList
	done     chan struct{}
	rr       atomic.Uint32 // round-robin cursor for unpinned submissions
}

func newSched(r *Resource, workers int) *sched {
	return &sched{
		res:    r,
		shards: make([]ringShard, workers),
		done:   make(chan struct{}),
	}
}

// submit queues ts for execution. hint pins the submission to a worker's
// own shard (resubmission after a preempted execution); hint < 0 spreads
// round-robin. Every submission is a queue handoff for the Table I
// accounting; unparking an idle worker is a wakeup.
//
//neptune:hotpath
func (s *sched) submit(ts *taskState, hint int) {
	s.res.switches.CountHandoff()
	if s.res.term.Load() {
		// Terminating: workers are gone or going; drop like the old
		// single-queue path dropped on the closed done channel.
		return
	}
	idx := hint
	if idx < 0 {
		idx = int(s.rr.Add(1)) % len(s.shards)
	}
	if !s.shards[idx].push(ts) {
		pushed := false
		for off := 1; off < len(s.shards); off++ {
			if s.shards[(idx+off)%len(s.shards)].push(ts) {
				pushed = true
				break
			}
		}
		if !pushed {
			s.overflow.push(ts)
		}
	}
	if w := s.idle.pop(); w != nil {
		s.res.switches.CountWakeup()
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}

// next returns the next task for worker id: own ring, then the overflow
// spill (oldest work first), then half of a random victim's ring.
//
//neptune:hotpath
func (s *sched) next(id int, rng *uint64, stealBuf *[]*taskState) *taskState {
	if ts := s.shards[id].pop(); ts != nil {
		return ts
	}
	if ts := s.overflow.pop(); ts != nil {
		return ts
	}
	n := len(s.shards)
	if n == 1 {
		return nil
	}
	// xorshift victim selection: cheap, per-worker, no shared state.
	x := *rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*rng = x
	start := int(x % uint64(n))
	for off := 0; off < n; off++ {
		v := (start + off) % n
		if v == id {
			continue
		}
		got := s.shards[v].stealHalf((*stealBuf)[:0])
		if len(got) == 0 {
			continue
		}
		ts := got[0]
		for _, extra := range got[1:] {
			// The thief's ring is empty and steals take at most half a
			// ring, so these pushes cannot fail.
			s.shards[id].push(extra)
		}
		*stealBuf = got
		return ts
	}
	return nil
}

// empty reports whether no queued work exists anywhere (racy; Quiesce
// combines it with the per-task state check).
func (s *sched) empty() bool {
	if s.overflow.len() > 0 {
		return false
	}
	for i := range s.shards {
		if s.shards[i].len() > 0 {
			return false
		}
	}
	return true
}

// drainIdle unparks every parked worker (termination).
func (s *sched) drainIdle() {
	for {
		w := s.idle.pop()
		if w == nil {
			return
		}
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
}
