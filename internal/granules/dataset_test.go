package granules

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/backpressure"
)

// drainTask consumes ints from its dataset on each execution.
type drainTask struct {
	id      string
	ds      *StreamDataset[int]
	drained atomic.Int64
	sum     atomic.Int64
	delay   time.Duration
}

func (d *drainTask) ID() string                { return d.id }
func (d *drainTask) Init(rc *RunContext) error { return nil }
func (d *drainTask) Close() error              { return nil }
func (d *drainTask) Execute(rc *RunContext) error {
	for {
		v, ok := d.ds.Poll()
		if !ok {
			return nil
		}
		d.drained.Add(1)
		d.sum.Add(int64(v))
		if d.delay > 0 {
			time.Sleep(d.delay)
		}
	}
}

func TestStreamDatasetDrivesTask(t *testing.T) {
	r := NewResource("res", 2)
	task := &drainTask{id: "sink"}
	ds, err := NewStreamDataset[int]("in", r, "sink", 1024, 4096)
	if err != nil {
		t.Fatal(err)
	}
	task.ds = ds
	r.Register(task, DataDriven{})
	r.Deploy()
	defer r.Terminate()

	total := 0
	for i := 1; i <= 100; i++ {
		if err := ds.Put(i, 8); err != nil {
			t.Fatal(err)
		}
		total += i
	}
	waitUntil(t, func() bool { return task.drained.Load() == 100 })
	if task.sum.Load() != int64(total) {
		t.Fatalf("sum = %d, want %d", task.sum.Load(), total)
	}
	if ds.Len() != 0 || ds.Level() != 0 {
		t.Fatalf("dataset not drained: len=%d level=%d", ds.Len(), ds.Level())
	}
	if ds.Name() != "in" {
		t.Fatalf("Name = %q", ds.Name())
	}
}

func TestStreamDatasetBackpressureThrottlesProducer(t *testing.T) {
	r := NewResource("res", 1)
	task := &drainTask{id: "slow", delay: 100 * time.Microsecond}
	ds, err := NewStreamDataset[int]("in", r, "slow", 256, 512)
	if err != nil {
		t.Fatal(err)
	}
	task.ds = ds
	r.Register(task, DataDriven{})
	r.Deploy()
	defer r.Terminate()

	const n = 300
	for i := 0; i < n; i++ {
		if err := ds.Put(i, 64); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, func() bool { return task.drained.Load() == n })
	if ds.PressureStats().GateClosures == 0 {
		t.Fatal("fast producer was never gated by the slow consumer")
	}
}

func TestStreamDatasetTakeBlocksUntilData(t *testing.T) {
	r := NewResource("res", 1)
	r.Deploy()
	defer r.Terminate()
	r.Register(&testTask{id: "t"}, nil)
	ds, _ := NewStreamDataset[string]("in", r, "t", 64, 128)
	got := make(chan string, 1)
	go func() {
		v, ok := ds.Take()
		if ok {
			got <- v
		} else {
			got <- "<closed>"
		}
	}()
	time.Sleep(5 * time.Millisecond)
	ds.Put("hello", 5)
	select {
	case v := <-got:
		if v != "hello" {
			t.Fatalf("Take = %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Take never returned")
	}
}

func TestStreamDatasetClose(t *testing.T) {
	r := NewResource("res", 1)
	r.Register(&testTask{id: "t"}, nil)
	r.Deploy()
	defer r.Terminate()
	ds, _ := NewStreamDataset[int]("in", r, "t", 64, 128)
	ds.Put(1, 1)
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	// Remaining items drain, then Take reports closure.
	if v, ok := ds.Take(); !ok || v != 1 {
		t.Fatalf("drain after close = %v, %v", v, ok)
	}
	if _, ok := ds.Take(); ok {
		t.Fatal("Take on drained closed dataset returned ok")
	}
	if err := ds.Put(2, 1); !errors.Is(err, backpressure.ErrClosed) {
		t.Fatalf("Put after close = %v", err)
	}
}

func TestStreamDatasetInvalidWatermarks(t *testing.T) {
	r := NewResource("res", 1)
	if _, err := NewStreamDataset[int]("in", r, "t", 100, 50); err == nil {
		t.Fatal("invalid watermarks accepted")
	}
}

func TestStreamDatasetPutToUndeployedResource(t *testing.T) {
	// Producers can enqueue before the resource deploys; the notification
	// is dropped but data is not lost — it is drained at first scheduled
	// execution after deployment.
	r := NewResource("res", 1)
	task := &drainTask{id: "late"}
	ds, _ := NewStreamDataset[int]("in", r, "late", 1024, 4096)
	task.ds = ds
	r.Register(task, DataDriven{})
	if err := ds.Put(42, 8); err != nil {
		t.Fatal(err)
	}
	r.Deploy()
	defer r.Terminate()
	// A post-deploy put triggers scheduling, which drains both items.
	ds.Put(43, 8)
	waitUntil(t, func() bool { return task.drained.Load() == 2 })
	if task.sum.Load() != 85 {
		t.Fatalf("sum = %d, want 85", task.sum.Load())
	}
}
