package granules

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// fileDrainTask consumes records from a FileDataset per execution.
type fileDrainTask struct {
	id    string
	ds    *FileDataset
	lines atomic.Int64
	total atomic.Int64
}

func (d *fileDrainTask) ID() string             { return d.id }
func (d *fileDrainTask) Init(*RunContext) error { return nil }
func (d *fileDrainTask) Close() error           { return nil }
func (d *fileDrainTask) Execute(*RunContext) error {
	for {
		rec, ok := d.ds.Poll()
		if !ok {
			return nil
		}
		d.lines.Add(1)
		d.total.Add(int64(len(rec)))
	}
}

func TestFileDatasetDrivesTask(t *testing.T) {
	var content strings.Builder
	want := 0
	for i := 0; i < 500; i++ {
		fmt.Fprintf(&content, "record-%04d\n", i)
		want += len(fmt.Sprintf("record-%04d", i))
	}
	path := writeTemp(t, "data.txt", content.String())

	r := NewResource("res", 2)
	task := &fileDrainTask{id: "reader"}
	ds, err := NewFileDataset("file", path, r, "reader", FileDatasetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	task.ds = ds
	r.Register(task, DataDriven{})
	r.Deploy()
	defer r.Terminate()
	ds.Start()
	ds.Start() // idempotent

	waitUntil(t, func() bool { return task.lines.Load() == 500 && ds.Done() })
	if task.total.Load() != int64(want) {
		t.Fatalf("bytes = %d, want %d", task.total.Load(), want)
	}
	if err := ds.Err(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileDatasetCustomDelimiter(t *testing.T) {
	path := writeTemp(t, "csv.txt", "a;bb;ccc;dddd")
	r := NewResource("res", 1)
	r.Register(&testTask{id: "t"}, nil)
	r.Deploy()
	defer r.Terminate()
	ds, err := NewFileDataset("semi", path, r, "t", FileDatasetOptions{Delimiter: ';'})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ds.Start()
	var recs [][]byte
	for len(recs) < 4 {
		rec, ok := ds.Take()
		if !ok {
			break
		}
		recs = append(recs, rec)
	}
	want := [][]byte{[]byte("a"), []byte("bb"), []byte("ccc"), []byte("dddd")}
	if len(recs) != 4 {
		t.Fatalf("records = %d", len(recs))
	}
	for i := range want {
		if !bytes.Equal(recs[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, recs[i], want[i])
		}
	}
}

func TestFileDatasetMissingFile(t *testing.T) {
	r := NewResource("res", 1)
	if _, err := NewFileDataset("nope", "/does/not/exist", r, "t", FileDatasetOptions{}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestFileDatasetBackpressureThrottlesReader(t *testing.T) {
	// A huge file with a tiny watermark: the reader must not slurp the
	// whole file into memory while the consumer is slow.
	var content strings.Builder
	for i := 0; i < 10_000; i++ {
		fmt.Fprintf(&content, "%0100d\n", i)
	}
	path := writeTemp(t, "big.txt", content.String())
	r := NewResource("res", 1)
	r.Register(&testTask{id: "t"}, nil)
	r.Deploy()
	defer r.Terminate()
	ds, err := NewFileDataset("big", path, r, "t", FileDatasetOptions{
		LowWatermark: 1 << 10, HighWatermark: 4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ds.Start()
	time.Sleep(20 * time.Millisecond)
	if ds.Done() {
		t.Fatal("reader finished a 1 MB file against a 4 KB watermark without consumption")
	}
	if lvl := ds.stream.Level(); lvl > 8<<10 {
		t.Fatalf("buffered %d bytes, watermark 4 KB", lvl)
	}
	// Drain everything; reader must finish.
	n := 0
	for {
		_, ok := ds.Take()
		if !ok {
			break
		}
		n++
		if n == 10_000 {
			break
		}
	}
	if n != 10_000 {
		t.Fatalf("drained %d records", n)
	}
	waitUntil(t, func() bool { return ds.Done() })
	if err := ds.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestFileDatasetCloseStopsReader(t *testing.T) {
	var content strings.Builder
	for i := 0; i < 50_000; i++ {
		content.WriteString("line\n")
	}
	path := writeTemp(t, "stop.txt", content.String())
	r := NewResource("res", 1)
	r.Register(&testTask{id: "t"}, nil)
	r.Deploy()
	defer r.Terminate()
	ds, err := NewFileDataset("stop", path, r, "t", FileDatasetOptions{
		LowWatermark: 256, HighWatermark: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds.Start()
	time.Sleep(5 * time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- ds.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung with a blocked reader")
	}
	if ds.Name() != "stop" {
		t.Fatal("name")
	}
}

func TestFileDatasetEmptyFile(t *testing.T) {
	path := writeTemp(t, "empty.txt", "")
	r := NewResource("res", 1)
	r.Register(&testTask{id: "t"}, nil)
	r.Deploy()
	defer r.Terminate()
	ds, err := NewFileDataset("empty", path, r, "t", FileDatasetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ds.Start()
	waitUntil(t, func() bool { return ds.Done() })
	if ds.Len() != 0 {
		t.Fatalf("Len = %d for empty file", ds.Len())
	}
	if _, ok := ds.Poll(); ok {
		t.Fatal("Poll returned a record from an empty file")
	}
}

func TestFileDatasetNoTrailingDelimiter(t *testing.T) {
	path := writeTemp(t, "trail.txt", "a\nb\nc") // no final newline
	r := NewResource("res", 1)
	r.Register(&testTask{id: "t"}, nil)
	r.Deploy()
	defer r.Terminate()
	ds, err := NewFileDataset("trail", path, r, "t", FileDatasetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ds.Start()
	var recs []string
	for len(recs) < 3 {
		rec, ok := ds.Take()
		if !ok {
			break
		}
		recs = append(recs, string(rec))
	}
	if len(recs) != 3 || recs[2] != "c" {
		t.Fatalf("records = %v", recs)
	}
}
