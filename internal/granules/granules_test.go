package granules

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testTask is a configurable task for exercising the runtime.
type testTask struct {
	id        string
	initCount atomic.Int32
	execCount atomic.Int32
	closed    atomic.Int32
	onExec    func(rc *RunContext) error
	onInit    func(rc *RunContext) error

	mu         sync.Mutex
	concurrent int
	maxConc    int
}

func (t *testTask) ID() string { return t.id }

func (t *testTask) Init(rc *RunContext) error {
	t.initCount.Add(1)
	if t.onInit != nil {
		return t.onInit(rc)
	}
	return nil
}

func (t *testTask) Execute(rc *RunContext) error {
	t.mu.Lock()
	t.concurrent++
	if t.concurrent > t.maxConc {
		t.maxConc = t.concurrent
	}
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		t.concurrent--
		t.mu.Unlock()
	}()
	t.execCount.Add(1)
	if t.onExec != nil {
		return t.onExec(rc)
	}
	return nil
}

func (t *testTask) Close() error {
	t.closed.Add(1)
	return nil
}

func deployOne(t *testing.T, task Task, s Strategy) *Resource {
	t.Helper()
	r := NewResource("test", 4)
	if err := r.Register(task, s); err != nil {
		t.Fatal(err)
	}
	if err := r.Deploy(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Terminate() })
	return r
}

func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLifecycle(t *testing.T) {
	task := &testTask{id: "t1"}
	r := NewResource("res", 2)
	if err := r.Register(task, DataDriven{}); err != nil {
		t.Fatal(err)
	}
	if err := r.Deploy(); err != nil {
		t.Fatal(err)
	}
	if task.initCount.Load() != 1 {
		t.Fatalf("Init ran %d times", task.initCount.Load())
	}
	if err := r.NotifyData("t1"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool { return task.execCount.Load() == 1 })
	if err := r.Terminate(); err != nil {
		t.Fatal(err)
	}
	if task.closed.Load() != 1 {
		t.Fatalf("Close ran %d times", task.closed.Load())
	}
	// Terminate is idempotent.
	if err := r.Terminate(); err != nil {
		t.Fatal(err)
	}
	if task.closed.Load() != 1 {
		t.Fatal("Close ran again on second Terminate")
	}
}

func TestDeployErrors(t *testing.T) {
	r := NewResource("res", 1)
	if err := r.Deploy(); err != nil {
		t.Fatal(err)
	}
	if err := r.Deploy(); !errors.Is(err, ErrAlreadyRunning) {
		t.Fatalf("second Deploy = %v", err)
	}
	r.Terminate()
	if err := r.Deploy(); !errors.Is(err, ErrTerminated) {
		t.Fatalf("Deploy after Terminate = %v", err)
	}
	if err := r.Register(&testTask{id: "x"}, nil); !errors.Is(err, ErrTerminated) {
		t.Fatalf("Register after Terminate = %v", err)
	}
}

func TestDuplicateTask(t *testing.T) {
	r := NewResource("res", 1)
	if err := r.Register(&testTask{id: "t"}, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(&testTask{id: "t"}, nil); !errors.Is(err, ErrDuplicateTask) {
		t.Fatalf("duplicate = %v", err)
	}
	r.Terminate()
}

func TestNotifyUnknownAndUndeployed(t *testing.T) {
	r := NewResource("res", 1)
	if err := r.NotifyData("ghost"); !errors.Is(err, ErrNotDeployed) {
		t.Fatalf("undeployed NotifyData = %v", err)
	}
	r.Deploy()
	defer r.Terminate()
	if err := r.NotifyData("ghost"); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("unknown NotifyData = %v", err)
	}
}

func TestNoConcurrentExecutionPerTask(t *testing.T) {
	task := &testTask{id: "t1", onExec: func(rc *RunContext) error {
		time.Sleep(200 * time.Microsecond)
		return nil
	}}
	r := deployOne(t, task, DataDriven{})
	for i := 0; i < 200; i++ {
		r.NotifyData("t1")
	}
	waitUntil(t, func() bool { return task.execCount.Load() >= 2 })
	r.Quiesce(3 * time.Second)
	task.mu.Lock()
	defer task.mu.Unlock()
	if task.maxConc != 1 {
		t.Fatalf("task executed on %d workers concurrently", task.maxConc)
	}
}

func TestNotificationCoalescing(t *testing.T) {
	// Notifications arriving during an execution coalesce into a single
	// follow-up run (the pending flag), so executions <= notifications
	// but >= 2 for a burst.
	block := make(chan struct{})
	task := &testTask{id: "t1", onExec: func(rc *RunContext) error {
		select {
		case <-block:
		case <-time.After(time.Second):
		}
		return nil
	}}
	r := deployOne(t, task, DataDriven{})
	for i := 0; i < 100; i++ {
		r.NotifyData("t1")
	}
	close(block)
	waitUntil(t, func() bool { return task.execCount.Load() >= 2 })
	r.Quiesce(3 * time.Second)
	n := task.execCount.Load()
	if n > 100 {
		t.Fatalf("executions %d exceed notifications", n)
	}
	if n < 2 {
		t.Fatalf("pending notification lost: %d executions", n)
	}
}

func TestCountBasedStrategy(t *testing.T) {
	task := &testTask{id: "t1"}
	r := deployOne(t, task, CountBased{N: 10})
	for i := 0; i < 100; i++ {
		r.NotifyData("t1")
		// Pace the notifications so executions don't coalesce; the
		// count-based gate itself is what's under test.
		if (i+1)%10 == 0 {
			waitUntil(t, func() bool { return r.Quiesce(time.Second) })
		}
	}
	if got := task.execCount.Load(); got != 10 {
		t.Fatalf("executions = %d, want 10", got)
	}
}

func TestCountBasedZeroN(t *testing.T) {
	c := CountBased{N: 0}
	if !c.OnData(1) || !c.OnData(2) {
		t.Fatal("N=0 should behave like N=1")
	}
}

func TestPeriodicStrategy(t *testing.T) {
	task := &testTask{id: "t1"}
	r := deployOne(t, task, Periodic{Every: 5 * time.Millisecond})
	waitUntil(t, func() bool { return task.execCount.Load() >= 3 })
	// Data notifications must not schedule a periodic task.
	before := task.execCount.Load()
	r.NotifyData("t1")
	r.NotifyData("t1")
	time.Sleep(2 * time.Millisecond)
	if got := task.execCount.Load(); got > before+2 {
		t.Fatalf("data notifications scheduled a periodic task (%d -> %d)", before, got)
	}
}

func TestCombinedStrategy(t *testing.T) {
	s := Combined{Data: CountBased{N: 2}, Every: 100 * time.Millisecond}
	if s.OnData(1) || !s.OnData(2) {
		t.Fatal("Combined data gating broken")
	}
	if s.Interval() != 100*time.Millisecond {
		t.Fatal("Combined interval broken")
	}
	nilData := Combined{Every: time.Second}
	if nilData.OnData(5) {
		t.Fatal("nil data component should never schedule on data")
	}
}

func TestSetStrategyAtRuntime(t *testing.T) {
	task := &testTask{id: "t1"}
	r := deployOne(t, task, CountBased{N: 1000000})
	r.NotifyData("t1")
	time.Sleep(5 * time.Millisecond)
	if task.execCount.Load() != 0 {
		t.Fatal("premature execution")
	}
	if err := r.SetStrategy("t1", DataDriven{}); err != nil {
		t.Fatal(err)
	}
	r.NotifyData("t1")
	waitUntil(t, func() bool { return task.execCount.Load() >= 1 })

	// Switch to periodic at runtime.
	if err := r.SetStrategy("t1", Periodic{Every: 3 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	base := task.execCount.Load()
	waitUntil(t, func() bool { return task.execCount.Load() >= base+3 })

	if err := r.SetStrategy("ghost", DataDriven{}); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("SetStrategy(ghost) = %v", err)
	}
	if err := r.SetStrategy("t1", nil); err == nil {
		t.Fatal("nil strategy accepted")
	}
}

func TestTaskPanicRecovered(t *testing.T) {
	task := &testTask{id: "t1", onExec: func(rc *RunContext) error {
		panic("boom")
	}}
	var handled atomic.Int32
	r := NewResource("res", 2)
	r.ErrorHandler = func(taskID string, err error) {
		if taskID == "t1" && err != nil {
			handled.Add(1)
		}
	}
	r.Register(task, DataDriven{})
	r.Deploy()
	defer r.Terminate()
	r.NotifyData("t1")
	waitUntil(t, func() bool { return handled.Load() == 1 })
	lastErr, err := r.LastError("t1")
	if err != nil {
		t.Fatal(err)
	}
	if lastErr == nil {
		t.Fatal("panic not recorded as task error")
	}
	if got := r.Metrics().Counter("task_errors").Value(); got != 1 {
		t.Fatalf("task_errors = %d", got)
	}
	// The resource survives: further executions work.
	task.onExec = nil
	r.NotifyData("t1")
	waitUntil(t, func() bool { return task.execCount.Load() >= 2 })
}

func TestInitFailureAtDeploy(t *testing.T) {
	task := &testTask{id: "bad", onInit: func(rc *RunContext) error {
		return errors.New("no init")
	}}
	r := NewResource("res", 1)
	r.Register(task, nil)
	if err := r.Deploy(); err == nil {
		t.Fatal("Deploy should surface Init failure")
	}
	r.Terminate()
}

func TestRegisterAfterDeployInitsImmediately(t *testing.T) {
	r := NewResource("res", 2)
	r.Deploy()
	defer r.Terminate()
	task := &testTask{id: "late"}
	if err := r.Register(task, DataDriven{}); err != nil {
		t.Fatal(err)
	}
	if task.initCount.Load() != 1 {
		t.Fatal("late-registered task not initialized")
	}
	r.NotifyData("late")
	waitUntil(t, func() bool { return task.execCount.Load() == 1 })

	// Init failure on late registration unregisters the task.
	bad := &testTask{id: "badlate", onInit: func(rc *RunContext) error { return errors.New("x") }}
	if err := r.Register(bad, nil); err == nil {
		t.Fatal("late Init failure not surfaced")
	}
	if err := r.NotifyData("badlate"); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("failed task still registered: %v", err)
	}
}

func TestRegisterAfterDeployPeriodicStartsTicker(t *testing.T) {
	r := NewResource("res", 2)
	r.Deploy()
	defer r.Terminate()
	task := &testTask{id: "p"}
	if err := r.Register(task, Periodic{Every: 3 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, func() bool { return task.execCount.Load() >= 2 })
}

func TestExecutionsAndTaskIDs(t *testing.T) {
	task := &testTask{id: "t1"}
	r := deployOne(t, task, DataDriven{})
	r.NotifyData("t1")
	waitUntil(t, func() bool {
		n, _ := r.Executions("t1")
		return n == 1
	})
	if _, err := r.Executions("ghost"); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("Executions(ghost) = %v", err)
	}
	if _, err := r.LastError("ghost"); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("LastError(ghost) = %v", err)
	}
	ids := r.TaskIDs()
	if len(ids) != 1 || ids[0] != "t1" {
		t.Fatalf("TaskIDs = %v", ids)
	}
}

func TestWorkerPoolDefaultSize(t *testing.T) {
	r := NewResource("res", 0)
	if r.Workers() < 1 {
		t.Fatalf("Workers = %d", r.Workers())
	}
	if r.Name() != "res" {
		t.Fatalf("Name = %q", r.Name())
	}
}

func TestContextSwitchAccounting(t *testing.T) {
	task := &testTask{id: "t1"}
	r := deployOne(t, task, DataDriven{})
	for i := 0; i < 50; i++ {
		r.NotifyData("t1")
		time.Sleep(100 * time.Microsecond)
	}
	r.Quiesce(3 * time.Second)
	if r.Switches().Handoffs() == 0 {
		t.Fatal("no handoffs recorded")
	}
	if r.Switches().Switches() == 0 {
		t.Fatal("no context-switch equivalents recorded")
	}
}

func TestManyTasksParallel(t *testing.T) {
	r := NewResource("res", 8)
	const n = 32
	tasks := make([]*testTask, n)
	for i := range tasks {
		tasks[i] = &testTask{id: string(rune('a' + i))}
		if err := r.Register(tasks[i], DataDriven{}); err != nil {
			t.Fatal(err)
		}
	}
	r.Deploy()
	defer r.Terminate()
	var wg sync.WaitGroup
	for i := range tasks {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.NotifyData(id)
			}
		}(tasks[i].id)
	}
	wg.Wait()
	waitUntil(t, func() bool { return r.Quiesce(time.Second) })
	for _, task := range tasks {
		if task.execCount.Load() == 0 {
			t.Fatalf("task %s never executed", task.id)
		}
	}
}

func TestQuiesceTimeout(t *testing.T) {
	task := &testTask{id: "slow", onExec: func(rc *RunContext) error {
		time.Sleep(300 * time.Millisecond)
		return nil
	}}
	r := deployOne(t, task, DataDriven{})
	r.NotifyData("slow")
	if r.Quiesce(10 * time.Millisecond) {
		t.Fatal("Quiesce reported idle while a task was running")
	}
	if !r.Quiesce(3 * time.Second) {
		t.Fatal("Quiesce never settled")
	}
}

func TestRunContextAccessors(t *testing.T) {
	var gotID string
	var gotRes *Resource
	task := &testTask{id: "ctx", onExec: func(rc *RunContext) error {
		gotID = rc.TaskID()
		gotRes = rc.Resource()
		rc.Metrics().Counter("custom").Inc()
		return nil
	}}
	r := deployOne(t, task, DataDriven{})
	r.NotifyData("ctx")
	waitUntil(t, func() bool { return task.execCount.Load() == 1 })
	r.Quiesce(time.Second)
	if gotID != "ctx" || gotRes != r {
		t.Fatalf("RunContext accessors: %q, %p vs %p", gotID, gotRes, r)
	}
	if r.Metrics().Counter("custom").Value() != 1 {
		t.Fatal("metrics not shared through RunContext")
	}
}
