package granules

import (
	"bufio"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// FileDataset is the file flavor of a Granules dataset: it streams a
// file's records (delimited byte slices) into a task, providing the same
// data-availability notifications — and the same backpressure — as the
// stream dataset, so a computational task processes a file and a live
// stream through one code path.
type FileDataset struct {
	name   string
	path   string
	stream *StreamDataset[[]byte]

	delim   byte
	maxRec  int
	started atomic.Bool
	wg      sync.WaitGroup
	readErr errOnceG
	eof     atomic.Bool
}

// errOnceG retains the first error recorded (granules-local copy of the
// engine's helper).
type errOnceG struct {
	mu  sync.Mutex
	err error
}

func (e *errOnceG) set(err error) {
	if err == nil {
		return
	}
	e.mu.Lock()
	if e.err == nil {
		e.err = err
	}
	e.mu.Unlock()
}

func (e *errOnceG) get() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// FileDatasetOptions configures a FileDataset.
type FileDatasetOptions struct {
	// Delimiter separates records (default '\n').
	Delimiter byte
	// MaxRecord bounds a record's size in bytes (default 1 MiB).
	MaxRecord int
	// LowWatermark and HighWatermark bound buffered bytes (defaults
	// 512 KiB / 1 MiB): a slow task throttles the file reader.
	LowWatermark, HighWatermark int64
}

func (o *FileDatasetOptions) defaults() {
	if o.Delimiter == 0 {
		o.Delimiter = '\n'
	}
	if o.MaxRecord <= 0 {
		o.MaxRecord = 1 << 20
	}
	if o.HighWatermark <= 0 {
		o.HighWatermark = 1 << 20
	}
	if o.LowWatermark <= 0 || o.LowWatermark >= o.HighWatermark {
		o.LowWatermark = o.HighWatermark / 2
	}
}

// NewFileDataset creates a dataset streaming path's records to the given
// task. Reading starts with Start.
func NewFileDataset(name, path string, r *Resource, taskID string, opts FileDatasetOptions) (*FileDataset, error) {
	opts.defaults()
	stream, err := NewStreamDataset[[]byte](name, r, taskID, opts.LowWatermark, opts.HighWatermark)
	if err != nil {
		return nil, err
	}
	if _, err := os.Stat(path); err != nil {
		return nil, fmt.Errorf("granules: file dataset %q: %w", name, err)
	}
	return &FileDataset{
		name:   name,
		path:   path,
		stream: stream,
		delim:  opts.Delimiter,
		maxRec: opts.MaxRecord,
	}, nil
}

// Name identifies the dataset.
func (d *FileDataset) Name() string { return d.name }

// Start launches the reader goroutine. It is idempotent.
func (d *FileDataset) Start() {
	if d.started.Swap(true) {
		return
	}
	d.wg.Add(1)
	go d.readLoop()
}

func (d *FileDataset) readLoop() {
	defer d.wg.Done()
	defer d.eof.Store(true)
	f, err := os.Open(d.path)
	if err != nil {
		d.readErr.set(err)
		return
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64<<10), d.maxRec)
	sc.Split(splitOn(d.delim))
	for sc.Scan() {
		rec := append([]byte(nil), sc.Bytes()...)
		if err := d.stream.Put(rec, int64(len(rec))+16); err != nil {
			// Dataset closed under us: stop reading.
			return
		}
	}
	d.readErr.set(sc.Err())
}

// splitOn returns a bufio.SplitFunc for an arbitrary single-byte
// delimiter (bufio.ScanLines fixed to '\n' otherwise).
func splitOn(delim byte) bufio.SplitFunc {
	return func(data []byte, atEOF bool) (advance int, token []byte, err error) {
		for i, b := range data {
			if b == delim {
				return i + 1, data[:i], nil
			}
		}
		if atEOF && len(data) > 0 {
			return len(data), data, nil
		}
		if atEOF {
			return 0, nil, nil
		}
		return 0, nil, nil
	}
}

// Poll returns the next record without blocking.
func (d *FileDataset) Poll() ([]byte, bool) { return d.stream.Poll() }

// Take returns the next record, blocking until available or closed.
func (d *FileDataset) Take() ([]byte, bool) { return d.stream.Take() }

// Len reports buffered records.
func (d *FileDataset) Len() int { return d.stream.Len() }

// Done reports whether the reader finished the file (successfully or
// not) — buffered records may still remain.
func (d *FileDataset) Done() bool { return d.eof.Load() }

// Err reports a read failure, if any.
func (d *FileDataset) Err() error { return d.readErr.get() }

// Close stops the reader and releases the dataset. It blocks until the
// reader goroutine exits.
func (d *FileDataset) Close() error {
	err := d.stream.Close()
	if d.started.Load() {
		d.wg.Wait()
	}
	return err
}
