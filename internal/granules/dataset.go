package granules

import (
	"repro/internal/backpressure"
)

// Dataset unifies a computational task's access to data — files, streams,
// or databases in the original Granules; NEPTUNE uses the stream flavor.
// The framework manages dataset lifecycles and surfaces data-availability
// notifications that drive data-driven scheduling.
type Dataset interface {
	// Name identifies the dataset within its task.
	Name() string
	// Close releases the dataset.
	Close() error
}

// StreamDataset is the stream dataset: a watermark-bounded inbound queue of
// items bound to one task. Put enqueues an item (blocking while the
// backpressure gate is closed) and notifies the owning resource so
// data-driven strategies can schedule the task; the task's Execute drains
// items with Poll.
type StreamDataset[T any] struct {
	name     string
	resource *Resource
	taskID   string
	queue    *backpressure.Queue[T]
}

// NewStreamDataset creates a stream dataset feeding the given task. low
// and high are the backpressure watermarks in bytes (see the backpressure
// package).
func NewStreamDataset[T any](name string, r *Resource, taskID string, low, high int64) (*StreamDataset[T], error) {
	q, err := backpressure.NewQueue[T](low, high)
	if err != nil {
		return nil, err
	}
	return &StreamDataset[T]{name: name, resource: r, taskID: taskID, queue: q}, nil
}

// Name identifies the dataset.
func (d *StreamDataset[T]) Name() string { return d.name }

// Put enqueues an item weighing bytes and notifies the resource of data
// availability. It blocks while the dataset's backpressure gate is closed
// — this is the write that TCP flow control would stall in the paper's
// distributed deployment.
func (d *StreamDataset[T]) Put(item T, bytes int64) error {
	if err := d.queue.Push(item, bytes); err != nil {
		return err
	}
	// A notification failure here means the resource is shutting down;
	// the item stays queued and will be drained or discarded with the
	// dataset. Task scheduling errors must not fail the producer.
	_ = d.resource.NotifyData(d.taskID)
	return nil
}

// Poll removes and returns the oldest item without blocking. ok is false
// when the dataset is currently empty.
func (d *StreamDataset[T]) Poll() (item T, ok bool) {
	return d.queue.TryPop()
}

// Take removes and returns the oldest item, blocking until one arrives or
// the dataset closes (ok is then false).
func (d *StreamDataset[T]) Take() (item T, ok bool) {
	return d.queue.Pop()
}

// Len reports queued items.
func (d *StreamDataset[T]) Len() int { return d.queue.Len() }

// Level reports queued bytes.
func (d *StreamDataset[T]) Level() int64 { return d.queue.Level() }

// Gated reports whether producers are currently throttled.
func (d *StreamDataset[T]) Gated() bool { return d.queue.Gated() }

// PressureStats exposes the backpressure counters.
func (d *StreamDataset[T]) PressureStats() backpressure.Stats { return d.queue.Stats() }

// Watermarks returns the inbound queue's low and high watermarks.
func (d *StreamDataset[T]) Watermarks() (low, high int64) { return d.queue.Watermarks() }

// SetPressureNotify installs a gate-transition observer on the inbound
// queue's valve (see backpressure.NotifyFunc) — the hook the control
// plane uses to advertise this dataset's watermark state upstream.
func (d *StreamDataset[T]) SetPressureNotify(fn backpressure.NotifyFunc) { d.queue.SetNotify(fn) }

// Close shuts the dataset down; blocked producers fail with
// backpressure.ErrClosed.
func (d *StreamDataset[T]) Close() error {
	d.queue.Close()
	return nil
}
