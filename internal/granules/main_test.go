package granules

import (
	"testing"

	"repro/internal/testutil"
)

// TestMain gates the whole package on goroutine hygiene: parked workers,
// periodic tickers, and the scheduler must all wind down with Terminate.
func TestMain(m *testing.M) { testutil.CheckMain(m) }
