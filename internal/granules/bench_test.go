package granules

// Scheduler benchmarks. BenchmarkSchedulerContention is the headline
// contention sweep: many producer goroutines spray data notifications at a
// resource while its worker pool drains the resulting executions, with the
// worker count swept from 1 to NumCPU (plus small fixed points so the
// sweep is meaningful on small machines). The per-notification cost — task
// lookup, strategy consult, schedule transition, run-queue submit — is
// exactly the path the paper's two-tier thread model keeps off the data
// plane, so ns/op here is the scheduler's contention profile.

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
	"testing"
	"time"
)

// benchSink is a minimal task: Execute does a fixed tiny amount of work so
// the benchmark measures scheduling overhead, not task bodies.
type benchSink struct {
	id   string
	hits atomic.Uint64
}

func (t *benchSink) ID() string                { return t.id }
func (t *benchSink) Init(*RunContext) error    { return nil }
func (t *benchSink) Execute(*RunContext) error { t.hits.Add(1); return nil }
func (t *benchSink) Close() error              { return nil }

// workerSweep returns the sorted, deduplicated worker counts to bench:
// 1, 2, 4, ... capped at NumCPU, with NumCPU itself always included.
func workerSweep() []int {
	cpus := runtime.NumCPU()
	set := map[int]bool{1: true, cpus: true}
	for w := 2; w < cpus; w *= 2 {
		set[w] = true
	}
	sweep := make([]int, 0, len(set))
	for w := range set {
		sweep = append(sweep, w)
	}
	sort.Ints(sweep)
	return sweep
}

// BenchmarkSchedulerContention measures concurrent NotifyData throughput
// against a deployed resource across a worker-count sweep. Each op is one
// data notification from one of several concurrent producers; executions
// coalesce per task, so the run queue stays bounded and the measured cost
// is the notify/schedule/submit path under contention.
func BenchmarkSchedulerContention(b *testing.B) {
	for _, workers := range workerSweep() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			r := NewResource("bench", workers)
			nTasks := 4 * workers
			tasks := make([]*benchSink, nTasks)
			for i := range tasks {
				tasks[i] = &benchSink{id: fmt.Sprintf("t%d", i)}
				if err := r.Register(tasks[i], DataDriven{}); err != nil {
					b.Fatal(err)
				}
			}
			if err := r.Deploy(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			b.SetParallelism(4) // producers per GOMAXPROCS: IO goroutines outnumber cores
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if err := r.NotifyData(tasks[i%nTasks].id); err != nil {
						b.Error(err)
						return
					}
					i++
				}
			})
			if !r.Quiesce(5 * time.Second) {
				b.Fatal("resource did not quiesce")
			}
			elapsed := time.Since(start)
			b.StopTimer()
			var execs uint64
			for _, t := range tasks {
				execs += t.hits.Load()
			}
			b.ReportMetric(float64(execs)/elapsed.Seconds(), "execs/s")
			if err := r.Terminate(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkSubmitLatency measures the uncontended single-producer path:
// one task, one worker, notify-then-quiesce pairs. It isolates the fixed
// cost of a schedule round trip (notify -> queue -> execute -> idle).
func BenchmarkSubmitLatency(b *testing.B) {
	r := NewResource("bench", 1)
	task := &benchSink{id: "t"}
	if err := r.Register(task, DataDriven{}); err != nil {
		b.Fatal(err)
	}
	if err := r.Deploy(); err != nil {
		b.Fatal(err)
	}
	defer r.Terminate()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.NotifyData("t"); err != nil {
			b.Fatal(err)
		}
	}
	if !r.Quiesce(5 * time.Second) {
		b.Fatal("resource did not quiesce")
	}
}
