package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestWireBytesSingleSmallPacket(t *testing.T) {
	// A 50-byte IoT payload: 50+40=90 Ethernet payload (>46, no pad),
	// plus 38 per-frame overhead = 128 on-wire bytes.
	if got := WireBytes(50); got != 128 {
		t.Fatalf("WireBytes(50) = %d, want 128", got)
	}
}

func TestWireBytesPadding(t *testing.T) {
	// 1-byte payload: 1+40=41 < 46 -> padded to 46, +38 = 84.
	if got := WireBytes(1); got != 84 {
		t.Fatalf("WireBytes(1) = %d, want 84", got)
	}
	// Zero payload (pure flush) still costs a frame: 46+38 = 84.
	if got := WireBytes(0); got != 84 {
		t.Fatalf("WireBytes(0) = %d, want 84", got)
	}
	if got := WireBytes(-5); got != 84 {
		t.Fatalf("WireBytes(-5) = %d, want 84", got)
	}
}

func TestWireBytesFullSegments(t *testing.T) {
	// Exactly one MSS: 1460+40+38 = 1538.
	if got := WireBytes(MSS); got != 1538 {
		t.Fatalf("WireBytes(MSS) = %d, want 1538", got)
	}
	// Exactly two MSS.
	if got := WireBytes(2 * MSS); got != 2*1538 {
		t.Fatalf("WireBytes(2*MSS) = %d, want %d", got, 2*1538)
	}
	// One byte over a segment adds a padded frame.
	if got := WireBytes(MSS + 1); got != 1538+84 {
		t.Fatalf("WireBytes(MSS+1) = %d, want %d", got, 1538+84)
	}
}

func TestFrames(t *testing.T) {
	cases := []struct{ payload, want int }{
		{0, 1}, {1, 1}, {MSS, 1}, {MSS + 1, 2}, {10 * MSS, 10}, {10*MSS + 1, 11},
	}
	for _, c := range cases {
		if got := Frames(c.payload); got != c.want {
			t.Errorf("Frames(%d) = %d, want %d", c.payload, got, c.want)
		}
	}
}

func TestEfficiencyShape(t *testing.T) {
	// Efficiency grows with payload and approaches MSS/1538 ≈ 0.9493.
	if Efficiency(0) != 0 {
		t.Error("Efficiency(0) should be 0")
	}
	e50 := Efficiency(50)
	if math.Abs(e50-50.0/128.0) > 1e-12 {
		t.Errorf("Efficiency(50) = %v", e50)
	}
	eBig := Efficiency(1 << 20)
	limit := float64(MSS) / 1538
	if math.Abs(eBig-limit) > 0.001 {
		t.Errorf("Efficiency(1MiB) = %v, want ~%v", eBig, limit)
	}
	if !(e50 < Efficiency(400) && Efficiency(400) < eBig) {
		t.Error("efficiency not increasing with payload size")
	}
}

func TestEfficiencyMonotoneOnFrameBoundaries(t *testing.T) {
	// Within a frame, adding payload bytes strictly improves efficiency;
	// crossing a boundary may dip but never below the single-small-frame
	// floor for that payload size. Check the paper's message range.
	prev := 0.0
	for p := 46; p <= 1460; p += 2 {
		e := Efficiency(p)
		if e < prev {
			t.Fatalf("efficiency decreased within frame at %d: %v < %v", p, e, prev)
		}
		prev = e
	}
}

func TestEfficiencyBoundsProperty(t *testing.T) {
	f := func(p uint16) bool {
		e := Efficiency(int(p))
		return e >= 0 && e < 0.95
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGoodputAtEfficiency(t *testing.T) {
	// Unbuffered 50 B packets on gigabit: 1e9 * 50/128 ≈ 390 Mbps goodput.
	got := GoodputAtEfficiency(GigabitEthernet, 50)
	want := 1e9 * 50 / 128
	if math.Abs(got-want) > 1 {
		t.Fatalf("GoodputAtEfficiency = %v, want %v", got, want)
	}
}

func TestLinkSerializationTime(t *testing.T) {
	l := NewLink(GigabitEthernet, 0)
	// One MSS: 1538 bytes * 8 = 12304 bits -> 12.304 µs at 1 Gbps.
	got := l.SerializationTime(MSS)
	want := time.Duration(12304)
	if math.Abs(float64(got-want*time.Nanosecond)) > 2 {
		t.Fatalf("SerializationTime = %v, want ~12.304µs", got)
	}
}

func TestLinkSendSerializes(t *testing.T) {
	l := NewLink(GigabitEthernet, time.Microsecond)
	a1 := l.Send(0, MSS)
	ser := l.SerializationTime(MSS)
	if a1 != ser+time.Microsecond {
		t.Fatalf("first arrival = %v, want %v", a1, ser+time.Microsecond)
	}
	// A second send issued at t=0 must queue behind the first.
	a2 := l.Send(0, MSS)
	if a2 != 2*ser+time.Microsecond {
		t.Fatalf("queued arrival = %v, want %v", a2, 2*ser+time.Microsecond)
	}
	// A send issued after the link is idle starts immediately.
	idleAt := l.BusyUntil() + time.Millisecond
	a3 := l.Send(idleAt, MSS)
	if a3 != idleAt+ser+time.Microsecond {
		t.Fatalf("idle-start arrival = %v", a3)
	}
}

func TestLinkAccounting(t *testing.T) {
	l := NewLink(GigabitEthernet, 0)
	l.Send(0, 50)
	l.Send(0, 50)
	if l.PayloadBytesSent() != 100 {
		t.Fatalf("payload = %d", l.PayloadBytesSent())
	}
	if l.WireBytesSent() != 256 {
		t.Fatalf("wire = %d", l.WireBytesSent())
	}
	l.Reset()
	if l.WireBytesSent() != 0 || l.BusyUntil() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestLinkUtilization(t *testing.T) {
	l := NewLink(1e6, 0) // 1 Mbps for easy math
	// Send 84 wire bytes = 672 bits; over 672 µs horizon -> 100% util.
	l.Send(0, 0)
	u := l.Utilization(672 * time.Microsecond)
	if math.Abs(u-1) > 0.01 {
		t.Fatalf("Utilization = %v, want ~1", u)
	}
	if got := l.Utilization(0); got != 0 {
		t.Fatalf("Utilization(0) = %v", got)
	}
	// Utilization is clamped to 1 even for tiny horizons.
	if got := l.Utilization(time.Nanosecond); got != 1 {
		t.Fatalf("clamp failed: %v", got)
	}
}

func TestLinkDefaultsAndString(t *testing.T) {
	l := NewLink(0, 0)
	if l.RateBits != GigabitEthernet {
		t.Fatalf("default rate = %v", l.RateBits)
	}
	if s := l.String(); s != "link(1000 Mbps, prop 0s)" {
		t.Fatalf("String = %q", s)
	}
}

func TestSaturationThroughputMatchesPaperScale(t *testing.T) {
	// Shape check backing Fig. 2: with large buffers (1 MB flushes) the
	// paper reports ~0.937 Gbps of bandwidth. A fully-buffered gigabit
	// link moves payload at Efficiency(batch)*1Gbps; for a 1 MB batch
	// that's ≈0.9493 goodput — the same regime (>0.93) as the paper.
	goodput := GoodputAtEfficiency(GigabitEthernet, 1<<20)
	if goodput < 0.93e9 || goodput > 0.96e9 {
		t.Fatalf("1MB-batch goodput = %v, want within [0.93, 0.96] Gbps", goodput)
	}
	// And 50 B unbuffered messages cap out near 0.39 Gbps goodput — the
	// bandwidth-underutilization the paper motivates with.
	small := GoodputAtEfficiency(GigabitEthernet, 50)
	if small > 0.45e9 {
		t.Fatalf("unbuffered 50B goodput = %v, should be well under half capacity", small)
	}
}

func BenchmarkWireBytes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		WireBytes(i & 0xFFFF)
	}
}

func BenchmarkLinkSend(b *testing.B) {
	l := NewLink(GigabitEthernet, 0)
	now := time.Duration(0)
	for i := 0; i < b.N; i++ {
		now = l.Send(now, 1024)
	}
}
