// Package netsim models the network substrate of the paper's testbed: a
// 1 Gbps switched Ethernet LAN carrying TCP traffic with an MTU of 1500
// bytes. The paper's bandwidth-utilization results (Figs. 2, 5, 6, 7) are
// consequences of Ethernet/IP/TCP framing overhead on small payloads; this
// package computes exact on-wire byte counts and transfer times so the
// reproduction recovers those curves without the physical cluster.
//
// The model is deliberately explicit about where each byte goes:
//
//	per frame:  preamble+SFD 8 + Ethernet header 14 + FCS 4 + IFG 12 = 38
//	per segment: IPv4 header 20 + TCP header 20 = 40
//	max TCP payload per frame (MSS): 1500 - 40 = 1460
//	minimum Ethernet payload: 46 bytes (padded)
package netsim

import (
	"fmt"
	"time"
)

// Framing constants for standard (non-jumbo) Ethernet with IPv4/TCP.
const (
	MTU              = 1500 // IP packet bytes per frame
	IPTCPHeader      = 40   // IPv4 (20) + TCP (20), no options
	MSS              = MTU - IPTCPHeader
	EthHeader        = 14 // dst+src MAC + ethertype
	EthFCS           = 4  // frame check sequence
	EthPreambleSFD   = 8  // preamble + start-of-frame delimiter
	EthIFG           = 12 // inter-frame gap (time on the wire, counted as bytes)
	EthMinPayload    = 46 // frames below this are padded
	PerFrameOverhead = EthHeader + EthFCS + EthPreambleSFD + EthIFG
)

// GigabitEthernet is the link speed of the paper's cluster in bits/sec.
const GigabitEthernet = 1e9

// WireBytes returns the total on-wire bytes (including every layer of
// framing and the inter-frame gap) needed to carry payload application
// bytes in a single TCP write that the stack may segment. A zero payload
// still costs one frame (the pure-ACK/flush case).
func WireBytes(payload int) int {
	if payload <= 0 {
		return frameWire(0)
	}
	full := payload / MSS
	rem := payload % MSS
	total := full * frameWire(MSS)
	if rem > 0 {
		total += frameWire(rem)
	}
	return total
}

// frameWire returns on-wire bytes for one frame carrying seg TCP payload
// bytes.
func frameWire(seg int) int {
	ethPayload := seg + IPTCPHeader
	if ethPayload < EthMinPayload {
		ethPayload = EthMinPayload
	}
	return ethPayload + PerFrameOverhead
}

// Frames returns the number of Ethernet frames a payload occupies.
func Frames(payload int) int {
	if payload <= 0 {
		return 1
	}
	f := payload / MSS
	if payload%MSS > 0 {
		f++
	}
	return f
}

// Efficiency returns payload bytes divided by wire bytes — the maximum
// fraction of link capacity this payload size can convert into goodput.
// Unbuffered 50-byte IoT packets sit near 0.31; full batches approach 0.95.
func Efficiency(payload int) float64 {
	if payload <= 0 {
		return 0
	}
	return float64(payload) / float64(WireBytes(payload))
}

// Link models one direction of a switched point-to-point Ethernet link as
// seen by a discrete-event simulation: a serializing resource with a fixed
// bit rate and propagation delay. Link is not safe for concurrent use; the
// event loop in internal/cluster owns it.
type Link struct {
	// RateBits is the link speed in bits per second.
	RateBits float64
	// Propagation is the one-way signal delay (cable + switch latency).
	Propagation time.Duration

	busyUntil time.Duration // virtual time at which the link frees up
	wireBytes uint64
	payload   uint64
}

// NewLink returns a link with the given rate (bits/sec) and propagation
// delay. Rates <= 0 default to gigabit Ethernet.
func NewLink(rateBits float64, propagation time.Duration) *Link {
	if rateBits <= 0 {
		rateBits = GigabitEthernet
	}
	return &Link{RateBits: rateBits, Propagation: propagation}
}

// SerializationTime returns how long the payload occupies the wire.
func (l *Link) SerializationTime(payload int) time.Duration {
	bits := float64(WireBytes(payload)) * 8
	return time.Duration(bits / l.RateBits * float64(time.Second))
}

// Send schedules a payload transmission starting no earlier than now
// (virtual time) and returns the virtual time at which the last bit
// arrives at the receiver. The link serializes transmissions: a send that
// arrives while the link is busy queues behind the previous one.
func (l *Link) Send(now time.Duration, payload int) (arrival time.Duration) {
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	ser := l.SerializationTime(payload)
	l.busyUntil = start + ser
	l.wireBytes += uint64(WireBytes(payload))
	l.payload += uint64(max(payload, 0))
	return l.busyUntil + l.Propagation
}

// BusyUntil reports the virtual time at which the link becomes idle.
func (l *Link) BusyUntil() time.Duration { return l.busyUntil }

// WireBytesSent reports cumulative on-wire bytes sent.
func (l *Link) WireBytesSent() uint64 { return l.wireBytes }

// PayloadBytesSent reports cumulative payload bytes sent.
func (l *Link) PayloadBytesSent() uint64 { return l.payload }

// Utilization reports the fraction of capacity used over the window
// [0, horizon) of virtual time.
func (l *Link) Utilization(horizon time.Duration) float64 {
	if horizon <= 0 {
		return 0
	}
	sent := float64(l.wireBytes) * 8
	capacity := l.RateBits * horizon.Seconds()
	u := sent / capacity
	if u > 1 {
		u = 1
	}
	return u
}

// Reset clears the link's accounting and busy state.
func (l *Link) Reset() {
	l.busyUntil = 0
	l.wireBytes = 0
	l.payload = 0
}

// GoodputAtEfficiency returns the maximum application-level bits/sec a
// link of rateBits can sustain for messages of the given payload size when
// each message is sent in its own TCP segment (the unbuffered case).
func GoodputAtEfficiency(rateBits float64, payload int) float64 {
	return rateBits * Efficiency(payload)
}

// String renders the link's parameters for debugging output.
func (l *Link) String() string {
	return fmt.Sprintf("link(%.0f Mbps, prop %v)", l.RateBits/1e6, l.Propagation)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
