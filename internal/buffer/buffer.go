// Package buffer implements NEPTUNE's application-level buffering
// (paper §III-B1). Outbound stream packets are accumulated per link in a
// capacity-based buffer — sized in bytes, not message count, so streams of
// mixed packet sizes flush as soon as the byte threshold is reached — and
// each buffer carries a timer that guarantees a flush within a bounded
// delay of the first message, putting a soft upper bound on end-to-end
// latency even for low-rate streams.
package buffer

import (
	"errors"
	"sync"
	"time"

	"repro/internal/packet"
)

// FlushReason records why a batch left the buffer.
type FlushReason uint8

// Flush reasons.
const (
	// FlushCapacity: the byte threshold was reached.
	FlushCapacity FlushReason = iota
	// FlushTimer: the per-buffer timer fired before capacity was reached.
	FlushTimer
	// FlushManual: the owner forced a flush.
	FlushManual
	// FlushClose: the buffer was closed with packets pending.
	FlushClose
)

// String names the reason.
func (r FlushReason) String() string {
	switch r {
	case FlushCapacity:
		return "capacity"
	case FlushTimer:
		return "timer"
	case FlushManual:
		return "manual"
	case FlushClose:
		return "close"
	default:
		return "unknown"
	}
}

// Flusher consumes a flushed batch. The batch slice is owned by the buffer
// and reused for a later batch once Flusher returns; implementations must
// finish with (or copy) the packets before returning. bytes is the summed
// wire size of the batch.
type Flusher func(batch []*packet.Packet, bytes int, reason FlushReason)

// Probe observes one delivered batch for latency telemetry: sojourn is
// the time from the batch's first Add to its take, packets the batch
// size. Probes run outside every buffer lock, after the Flusher, and
// must be cheap and non-blocking (the QoS sampler feeds an EWMA). A
// sojourn of 0 means the batch was taken before stamping (probe
// installed mid-batch) and should be ignored.
type Probe func(sojourn time.Duration, packets int)

// ErrClosed is returned by Add after Close.
var ErrClosed = errors.New("buffer: closed")

// Stats counts buffer activity by flush reason.
type Stats struct {
	Packets       uint64
	Bytes         uint64
	CapacityFlush uint64
	TimerFlush    uint64
	ManualFlush   uint64
	CloseFlush    uint64
	LargestBatch  int
	SmallestBatch int // smallest non-empty batch
	TimerResets   uint64
}

// Flushes returns the total number of flushes.
func (s Stats) Flushes() uint64 {
	return s.CapacityFlush + s.TimerFlush + s.ManualFlush + s.CloseFlush
}

// MeanBatchPackets returns the average packets per flush.
func (s Stats) MeanBatchPackets() float64 {
	f := s.Flushes()
	if f == 0 {
		return 0
	}
	return float64(s.Packets) / float64(f)
}

// CapacityBuffer accumulates packets until their summed wire size reaches
// the capacity, or until maxDelay elapses from the first packet of the
// current batch, whichever comes first. Both paths invoke the Flusher with
// the batch. CapacityBuffer is safe for concurrent Add calls; flushes are
// serialized and delivered in admission order, even when a timer fire and
// a capacity flush race.
type CapacityBuffer struct {
	flush Flusher

	mu sync.Mutex
	// capacity and maxDelay started life as construction-time constants;
	// the QoS controller (DESIGN §16) retunes them per link at runtime via
	// SetCapacity/SetMaxDelay, so both now live under b.mu.
	capacity int
	maxDelay time.Duration
	// probe, when installed, samples batch sojourn for the QoS loop.
	// firstAdd stamps the first packet of the current batch (only while a
	// probe is installed — one clock read per batch, not per packet).
	probe    Probe
	firstAdd int64 // UnixNano of the current batch's first Add; 0 if none
	pending  []*packet.Packet
	spare    []*packet.Packet // double buffer handed to the flusher
	bytes    int
	// One timer is allocated on first use and reused (Stop/Reset) across
	// batches; timerEpoch records the batch it was armed for, so a stale
	// callback that lost the race to a capacity flush no-ops.
	timer      *time.Timer
	timerEpoch uint64
	epoch      uint64 // invalidates in-flight timers after a flush
	closed     bool
	// Flusher invocations are serialized in *take order*: each batch gets a
	// ticket while b.mu is held, and deliver blocks until its ticket is up.
	// A plain mutex is not enough — between taking a batch and locking it,
	// another goroutine (timer fire vs. capacity flush) could take the next
	// batch and win the lock, reordering frames on the wire; a receiver
	// that dedups by sequence would then drop the overtaken batch.
	flushMu     sync.Mutex
	flushCond   *sync.Cond
	deliverNext uint64 // ticket currently allowed to invoke the flusher
	takeTickets uint64 // next ticket to hand out (under b.mu)
	stats       Stats
}

// New creates a buffer. capacity is the flush threshold in bytes
// (minimum 1). maxDelay <= 0 disables the timer — packets then leave only
// on capacity, manual flush, or close. flush must be non-nil.
func New(capacity int, maxDelay time.Duration, flush Flusher) *CapacityBuffer {
	if capacity < 1 {
		capacity = 1
	}
	if flush == nil {
		panic("buffer: nil Flusher")
	}
	b := &CapacityBuffer{
		capacity: capacity,
		maxDelay: maxDelay,
		flush:    flush,
	}
	b.flushCond = sync.NewCond(&b.flushMu)
	return b
}

// Add appends p to the current batch, flushing synchronously (on the
// caller's goroutine) when the byte threshold is reached. The first packet
// of a batch arms the flush timer.
//
//neptune:hotpath
func (b *CapacityBuffer) Add(p *packet.Packet) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.pending = append(b.pending, p)
	b.bytes += p.WireSize()
	if len(b.pending) == 1 {
		if b.maxDelay > 0 {
			b.armTimerLocked()
		}
		if b.probe != nil {
			b.firstAdd = time.Now().UnixNano()
		}
	}
	if b.bytes >= b.capacity {
		t := b.takeLocked()
		b.mu.Unlock()
		b.deliver(t, FlushCapacity)
		return nil
	}
	b.mu.Unlock()
	return nil
}

// AddBatch appends every packet of ps under one lock acquisition,
// flushing synchronously each time the byte threshold is crossed —
// exactly the batches a loop of Add calls would have produced, with the
// same timer arming, but without taking the lock per packet. It returns
// the number of packets admitted; the count is short of len(ps) only on
// error (the buffer was closed), in which case the remainder ps[n:] still
// belongs to the caller.
//
//neptune:hotpath
func (b *CapacityBuffer) AddBatch(ps []*packet.Packet) (int, error) {
	admitted := 0
	b.mu.Lock()
	for {
		if b.closed {
			b.mu.Unlock()
			return admitted, ErrClosed
		}
		// Admit packets until the threshold trips or ps runs out.
		for admitted < len(ps) && b.bytes < b.capacity {
			p := ps[admitted]
			admitted++
			b.pending = append(b.pending, p)
			b.bytes += p.WireSize()
			if len(b.pending) == 1 {
				if b.maxDelay > 0 {
					b.armTimerLocked()
				}
				if b.probe != nil {
					b.firstAdd = time.Now().UnixNano()
				}
			}
		}
		if b.bytes < b.capacity {
			b.mu.Unlock()
			return admitted, nil
		}
		t := b.takeLocked()
		b.mu.Unlock()
		b.deliver(t, FlushCapacity)
		if admitted == len(ps) {
			return admitted, nil
		}
		b.mu.Lock()
	}
}

// armTimerLocked arms the flush timer for the current batch, reusing one
// underlying timer across batches instead of allocating per batch. Caller
// holds b.mu.
//
// A callback already fired but not yet holding b.mu when the timer is
// rearmed can observe the new epoch and flush the new batch early — a
// harmless tightening of the latency bound, never a missed flush (the
// rearmed timer fires again and finds the batch gone).
func (b *CapacityBuffer) armTimerLocked() {
	b.timerEpoch = b.epoch
	if b.timer == nil {
		b.timer = time.AfterFunc(b.maxDelay, b.timerFire)
		return
	}
	if b.timer.Stop() {
		b.stats.TimerResets++
	}
	b.timer.Reset(b.maxDelay)
}

func (b *CapacityBuffer) timerFire() {
	b.mu.Lock()
	if b.closed || b.epoch != b.timerEpoch || len(b.pending) == 0 {
		b.mu.Unlock()
		return
	}
	t := b.takeLocked()
	b.mu.Unlock()
	b.deliver(t, FlushTimer)
}

// takeLocked swaps out the pending batch and assigns its delivery ticket.
// Caller holds b.mu and must pass the ticket to deliver (even if it decides
// not to flush) or later tickets stall forever. The returned take carries
// the batch's sojourn (first Add to take) for the probe; zero when no
// probe stamped the batch.
func (b *CapacityBuffer) takeLocked() take {
	t := take{batch: b.pending, bytes: b.bytes, ticket: b.takeTickets}
	b.pending = b.spare[:0]
	b.spare = nil
	b.bytes = 0
	b.epoch++
	b.takeTickets++
	if b.firstAdd != 0 {
		t.sojourn = time.Duration(time.Now().UnixNano() - b.firstAdd)
		b.firstAdd = 0
	}
	// Stop but keep the timer: the next batch rearms it with Reset.
	if b.timer != nil {
		b.timer.Stop()
	}
	return t
}

// take is one swapped-out batch in flight between takeLocked and deliver.
type take struct {
	batch   []*packet.Packet
	bytes   int
	ticket  uint64
	sojourn time.Duration
}

// deliver runs the flusher outside b.mu, in ticket (= take) order, then
// recycles the batch slice and reports the batch to the probe (outside
// every buffer lock).
func (b *CapacityBuffer) deliver(t take, reason FlushReason) {
	batch, bytes := t.batch, t.bytes
	b.flushMu.Lock()
	for t.ticket != b.deliverNext {
		b.flushCond.Wait()
	}
	if len(batch) > 0 {
		b.flush(batch, bytes, reason)
	}
	b.deliverNext++
	b.flushCond.Broadcast()
	b.flushMu.Unlock()
	if len(batch) == 0 {
		return
	}
	packets := len(batch)

	b.mu.Lock()
	b.stats.Packets += uint64(packets)
	b.stats.Bytes += uint64(bytes)
	switch reason {
	case FlushCapacity:
		b.stats.CapacityFlush++
	case FlushTimer:
		b.stats.TimerFlush++
	case FlushManual:
		b.stats.ManualFlush++
	case FlushClose:
		b.stats.CloseFlush++
	}
	if packets > b.stats.LargestBatch {
		b.stats.LargestBatch = packets
	}
	if b.stats.SmallestBatch == 0 || packets < b.stats.SmallestBatch {
		b.stats.SmallestBatch = packets
	}
	// Park the slice for reuse by the next batch.
	for i := range batch {
		batch[i] = nil
	}
	if b.spare == nil {
		b.spare = batch[:0]
	}
	probe := b.probe
	b.mu.Unlock()

	if probe != nil && t.sojourn > 0 {
		probe(t.sojourn, packets)
	}
}

// Flush forces any pending packets out with FlushManual.
func (b *CapacityBuffer) Flush() {
	b.mu.Lock()
	if b.closed || len(b.pending) == 0 {
		b.mu.Unlock()
		return
	}
	t := b.takeLocked()
	b.mu.Unlock()
	b.deliver(t, FlushManual)
}

// Close flushes any pending packets with FlushClose and rejects further
// Adds. Close is idempotent.
func (b *CapacityBuffer) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	var t take
	took := false
	if len(b.pending) > 0 {
		t = b.takeLocked()
		took = true
	} else if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.mu.Unlock()
	if took {
		// deliver checks stats under mu; closed buffers still record.
		b.deliver(t, FlushClose)
	}
}

// Len reports the number of packets currently pending.
func (b *CapacityBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}

// Settled reports whether the buffer is fully quiescent: nothing pending
// AND no taken batch still inside a flusher invocation. A drain that only
// checks Len can race a timer flush — the batch is out of pending but not
// yet delivered, invisible to both the buffer and the downstream side.
func (b *CapacityBuffer) Settled() bool {
	b.mu.Lock()
	pending := len(b.pending)
	taken := b.takeTickets
	b.mu.Unlock()
	if pending > 0 {
		return false
	}
	b.flushMu.Lock()
	delivered := b.deliverNext
	b.flushMu.Unlock()
	return delivered == taken
}

// PendingBytes reports the wire size of the pending batch.
func (b *CapacityBuffer) PendingBytes() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bytes
}

// Capacity reports the current flush threshold in bytes.
func (b *CapacityBuffer) Capacity() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.capacity
}

// MaxDelay reports the current timer bound.
func (b *CapacityBuffer) MaxDelay() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.maxDelay
}

// SetCapacity retunes the flush threshold at runtime (minimum 1 byte).
// Shrinking below the bytes already pending flushes the current batch
// immediately, so a latency-motivated shrink takes effect now rather
// than after one more packet.
func (b *CapacityBuffer) SetCapacity(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	b.mu.Lock()
	b.capacity = capacity
	if b.closed || b.bytes < b.capacity {
		b.mu.Unlock()
		return
	}
	t := b.takeLocked()
	b.mu.Unlock()
	b.deliver(t, FlushCapacity)
}

// SetMaxDelay retunes the flush-timer bound at runtime. A batch already
// accumulating is re-armed with the new delay (measured from now, not
// from its first packet — the one-batch transient is harmless either
// way). d <= 0 disables the timer for subsequent batches and stops any
// armed one.
func (b *CapacityBuffer) SetMaxDelay(d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maxDelay = d
	if b.closed {
		return
	}
	if d <= 0 {
		if b.timer != nil {
			b.timer.Stop()
		}
		return
	}
	if len(b.pending) > 0 {
		b.armTimerLocked()
	}
}

// SetProbe installs (or, with nil, removes) the latency probe. Sojourn
// stamping begins with the next batch; the in-flight batch reports zero
// and is skipped.
func (b *CapacityBuffer) SetProbe(p Probe) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probe = p
}

// Stats returns a snapshot of the buffer's counters.
func (b *CapacityBuffer) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}
