// Package buffer implements NEPTUNE's application-level buffering
// (paper §III-B1). Outbound stream packets are accumulated per link in a
// capacity-based buffer — sized in bytes, not message count, so streams of
// mixed packet sizes flush as soon as the byte threshold is reached — and
// each buffer carries a timer that guarantees a flush within a bounded
// delay of the first message, putting a soft upper bound on end-to-end
// latency even for low-rate streams.
package buffer

import (
	"errors"
	"sync"
	"time"

	"repro/internal/packet"
)

// FlushReason records why a batch left the buffer.
type FlushReason uint8

// Flush reasons.
const (
	// FlushCapacity: the byte threshold was reached.
	FlushCapacity FlushReason = iota
	// FlushTimer: the per-buffer timer fired before capacity was reached.
	FlushTimer
	// FlushManual: the owner forced a flush.
	FlushManual
	// FlushClose: the buffer was closed with packets pending.
	FlushClose
)

// String names the reason.
func (r FlushReason) String() string {
	switch r {
	case FlushCapacity:
		return "capacity"
	case FlushTimer:
		return "timer"
	case FlushManual:
		return "manual"
	case FlushClose:
		return "close"
	default:
		return "unknown"
	}
}

// Flusher consumes a flushed batch. The batch slice is owned by the buffer
// and reused for a later batch once Flusher returns; implementations must
// finish with (or copy) the packets before returning. bytes is the summed
// wire size of the batch.
type Flusher func(batch []*packet.Packet, bytes int, reason FlushReason)

// ErrClosed is returned by Add after Close.
var ErrClosed = errors.New("buffer: closed")

// Stats counts buffer activity by flush reason.
type Stats struct {
	Packets       uint64
	Bytes         uint64
	CapacityFlush uint64
	TimerFlush    uint64
	ManualFlush   uint64
	CloseFlush    uint64
	LargestBatch  int
	SmallestBatch int // smallest non-empty batch
	TimerResets   uint64
}

// Flushes returns the total number of flushes.
func (s Stats) Flushes() uint64 {
	return s.CapacityFlush + s.TimerFlush + s.ManualFlush + s.CloseFlush
}

// MeanBatchPackets returns the average packets per flush.
func (s Stats) MeanBatchPackets() float64 {
	f := s.Flushes()
	if f == 0 {
		return 0
	}
	return float64(s.Packets) / float64(f)
}

// CapacityBuffer accumulates packets until their summed wire size reaches
// the capacity, or until maxDelay elapses from the first packet of the
// current batch, whichever comes first. Both paths invoke the Flusher with
// the batch. CapacityBuffer is safe for concurrent Add calls; flushes are
// serialized.
type CapacityBuffer struct {
	capacity int
	maxDelay time.Duration
	flush    Flusher

	mu       sync.Mutex
	pending  []*packet.Packet
	spare    []*packet.Packet // double buffer handed to the flusher
	bytes    int
	timer    *time.Timer
	epoch    uint64 // invalidates in-flight timers after a flush
	closed   bool
	flushing sync.Mutex // serializes flusher invocations
	stats    Stats
}

// New creates a buffer. capacity is the flush threshold in bytes
// (minimum 1). maxDelay <= 0 disables the timer — packets then leave only
// on capacity, manual flush, or close. flush must be non-nil.
func New(capacity int, maxDelay time.Duration, flush Flusher) *CapacityBuffer {
	if capacity < 1 {
		capacity = 1
	}
	if flush == nil {
		panic("buffer: nil Flusher")
	}
	return &CapacityBuffer{
		capacity: capacity,
		maxDelay: maxDelay,
		flush:    flush,
	}
}

// Add appends p to the current batch, flushing synchronously (on the
// caller's goroutine) when the byte threshold is reached. The first packet
// of a batch arms the flush timer.
func (b *CapacityBuffer) Add(p *packet.Packet) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.pending = append(b.pending, p)
	b.bytes += p.WireSize()
	if len(b.pending) == 1 && b.maxDelay > 0 {
		b.armTimerLocked()
	}
	if b.bytes >= b.capacity {
		batch, bytes := b.takeLocked()
		b.mu.Unlock()
		b.deliver(batch, bytes, FlushCapacity)
		return nil
	}
	b.mu.Unlock()
	return nil
}

// armTimerLocked starts (or restarts) the flush timer for the current
// batch. Caller holds b.mu.
func (b *CapacityBuffer) armTimerLocked() {
	epoch := b.epoch
	if b.timer != nil {
		b.timer.Stop()
		b.stats.TimerResets++
	}
	b.timer = time.AfterFunc(b.maxDelay, func() {
		b.timerFire(epoch)
	})
}

func (b *CapacityBuffer) timerFire(epoch uint64) {
	b.mu.Lock()
	if b.closed || b.epoch != epoch || len(b.pending) == 0 {
		b.mu.Unlock()
		return
	}
	batch, bytes := b.takeLocked()
	b.mu.Unlock()
	b.deliver(batch, bytes, FlushTimer)
}

// takeLocked swaps out the pending batch. Caller holds b.mu.
func (b *CapacityBuffer) takeLocked() ([]*packet.Packet, int) {
	batch := b.pending
	bytes := b.bytes
	b.pending = b.spare[:0]
	b.spare = nil
	b.bytes = 0
	b.epoch++
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch, bytes
}

// deliver runs the flusher outside b.mu, then recycles the batch slice.
func (b *CapacityBuffer) deliver(batch []*packet.Packet, bytes int, reason FlushReason) {
	if len(batch) == 0 {
		return
	}
	b.flushing.Lock()
	b.flush(batch, bytes, reason)
	b.flushing.Unlock()

	b.mu.Lock()
	b.stats.Packets += uint64(len(batch))
	b.stats.Bytes += uint64(bytes)
	switch reason {
	case FlushCapacity:
		b.stats.CapacityFlush++
	case FlushTimer:
		b.stats.TimerFlush++
	case FlushManual:
		b.stats.ManualFlush++
	case FlushClose:
		b.stats.CloseFlush++
	}
	if len(batch) > b.stats.LargestBatch {
		b.stats.LargestBatch = len(batch)
	}
	if b.stats.SmallestBatch == 0 || len(batch) < b.stats.SmallestBatch {
		b.stats.SmallestBatch = len(batch)
	}
	// Park the slice for reuse by the next batch.
	for i := range batch {
		batch[i] = nil
	}
	if b.spare == nil {
		b.spare = batch[:0]
	}
	b.mu.Unlock()
}

// Flush forces any pending packets out with FlushManual.
func (b *CapacityBuffer) Flush() {
	b.mu.Lock()
	if b.closed || len(b.pending) == 0 {
		b.mu.Unlock()
		return
	}
	batch, bytes := b.takeLocked()
	b.mu.Unlock()
	b.deliver(batch, bytes, FlushManual)
}

// Close flushes any pending packets with FlushClose and rejects further
// Adds. Close is idempotent.
func (b *CapacityBuffer) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	var batch []*packet.Packet
	var bytes int
	if len(b.pending) > 0 {
		batch, bytes = b.takeLocked()
	} else if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.mu.Unlock()
	if batch != nil {
		// deliver checks stats under mu; closed buffers still record.
		b.deliver(batch, bytes, FlushClose)
	}
}

// Len reports the number of packets currently pending.
func (b *CapacityBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}

// PendingBytes reports the wire size of the pending batch.
func (b *CapacityBuffer) PendingBytes() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bytes
}

// Capacity reports the configured flush threshold in bytes.
func (b *CapacityBuffer) Capacity() int { return b.capacity }

// MaxDelay reports the configured timer bound.
func (b *CapacityBuffer) MaxDelay() time.Duration { return b.maxDelay }

// Stats returns a snapshot of the buffer's counters.
func (b *CapacityBuffer) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}
