// Package buffer implements NEPTUNE's application-level buffering
// (paper §III-B1). Outbound stream packets are accumulated per link in a
// capacity-based buffer — sized in bytes, not message count, so streams of
// mixed packet sizes flush as soon as the byte threshold is reached — and
// each buffer carries a timer that guarantees a flush within a bounded
// delay of the first message, putting a soft upper bound on end-to-end
// latency even for low-rate streams.
package buffer

import (
	"errors"
	"sync"
	"time"

	"repro/internal/packet"
)

// FlushReason records why a batch left the buffer.
type FlushReason uint8

// Flush reasons.
const (
	// FlushCapacity: the byte threshold was reached.
	FlushCapacity FlushReason = iota
	// FlushTimer: the per-buffer timer fired before capacity was reached.
	FlushTimer
	// FlushManual: the owner forced a flush.
	FlushManual
	// FlushClose: the buffer was closed with packets pending.
	FlushClose
)

// String names the reason.
func (r FlushReason) String() string {
	switch r {
	case FlushCapacity:
		return "capacity"
	case FlushTimer:
		return "timer"
	case FlushManual:
		return "manual"
	case FlushClose:
		return "close"
	default:
		return "unknown"
	}
}

// Flusher consumes a flushed batch. The batch slice is owned by the buffer
// and reused for a later batch once Flusher returns; implementations must
// finish with (or copy) the packets before returning. bytes is the summed
// wire size of the batch.
type Flusher func(batch []*packet.Packet, bytes int, reason FlushReason)

// ErrClosed is returned by Add after Close.
var ErrClosed = errors.New("buffer: closed")

// Stats counts buffer activity by flush reason.
type Stats struct {
	Packets       uint64
	Bytes         uint64
	CapacityFlush uint64
	TimerFlush    uint64
	ManualFlush   uint64
	CloseFlush    uint64
	LargestBatch  int
	SmallestBatch int // smallest non-empty batch
	TimerResets   uint64
}

// Flushes returns the total number of flushes.
func (s Stats) Flushes() uint64 {
	return s.CapacityFlush + s.TimerFlush + s.ManualFlush + s.CloseFlush
}

// MeanBatchPackets returns the average packets per flush.
func (s Stats) MeanBatchPackets() float64 {
	f := s.Flushes()
	if f == 0 {
		return 0
	}
	return float64(s.Packets) / float64(f)
}

// CapacityBuffer accumulates packets until their summed wire size reaches
// the capacity, or until maxDelay elapses from the first packet of the
// current batch, whichever comes first. Both paths invoke the Flusher with
// the batch. CapacityBuffer is safe for concurrent Add calls; flushes are
// serialized and delivered in admission order, even when a timer fire and
// a capacity flush race.
type CapacityBuffer struct {
	capacity int
	maxDelay time.Duration
	flush    Flusher

	mu      sync.Mutex
	pending []*packet.Packet
	spare   []*packet.Packet // double buffer handed to the flusher
	bytes   int
	// One timer is allocated on first use and reused (Stop/Reset) across
	// batches; timerEpoch records the batch it was armed for, so a stale
	// callback that lost the race to a capacity flush no-ops.
	timer      *time.Timer
	timerEpoch uint64
	epoch      uint64 // invalidates in-flight timers after a flush
	closed     bool
	// Flusher invocations are serialized in *take order*: each batch gets a
	// ticket while b.mu is held, and deliver blocks until its ticket is up.
	// A plain mutex is not enough — between taking a batch and locking it,
	// another goroutine (timer fire vs. capacity flush) could take the next
	// batch and win the lock, reordering frames on the wire; a receiver
	// that dedups by sequence would then drop the overtaken batch.
	flushMu     sync.Mutex
	flushCond   *sync.Cond
	deliverNext uint64 // ticket currently allowed to invoke the flusher
	takeTickets uint64 // next ticket to hand out (under b.mu)
	stats       Stats
}

// New creates a buffer. capacity is the flush threshold in bytes
// (minimum 1). maxDelay <= 0 disables the timer — packets then leave only
// on capacity, manual flush, or close. flush must be non-nil.
func New(capacity int, maxDelay time.Duration, flush Flusher) *CapacityBuffer {
	if capacity < 1 {
		capacity = 1
	}
	if flush == nil {
		panic("buffer: nil Flusher")
	}
	b := &CapacityBuffer{
		capacity: capacity,
		maxDelay: maxDelay,
		flush:    flush,
	}
	b.flushCond = sync.NewCond(&b.flushMu)
	return b
}

// Add appends p to the current batch, flushing synchronously (on the
// caller's goroutine) when the byte threshold is reached. The first packet
// of a batch arms the flush timer.
//
//neptune:hotpath
func (b *CapacityBuffer) Add(p *packet.Packet) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.pending = append(b.pending, p)
	b.bytes += p.WireSize()
	if len(b.pending) == 1 && b.maxDelay > 0 {
		b.armTimerLocked()
	}
	if b.bytes >= b.capacity {
		batch, bytes, ticket := b.takeLocked()
		b.mu.Unlock()
		b.deliver(batch, bytes, ticket, FlushCapacity)
		return nil
	}
	b.mu.Unlock()
	return nil
}

// AddBatch appends every packet of ps under one lock acquisition,
// flushing synchronously each time the byte threshold is crossed —
// exactly the batches a loop of Add calls would have produced, with the
// same timer arming, but without taking the lock per packet. It returns
// the number of packets admitted; the count is short of len(ps) only on
// error (the buffer was closed), in which case the remainder ps[n:] still
// belongs to the caller.
//
//neptune:hotpath
func (b *CapacityBuffer) AddBatch(ps []*packet.Packet) (int, error) {
	admitted := 0
	b.mu.Lock()
	for {
		if b.closed {
			b.mu.Unlock()
			return admitted, ErrClosed
		}
		// Admit packets until the threshold trips or ps runs out.
		for admitted < len(ps) && b.bytes < b.capacity {
			p := ps[admitted]
			admitted++
			b.pending = append(b.pending, p)
			b.bytes += p.WireSize()
			if len(b.pending) == 1 && b.maxDelay > 0 {
				b.armTimerLocked()
			}
		}
		if b.bytes < b.capacity {
			b.mu.Unlock()
			return admitted, nil
		}
		batch, bytes, ticket := b.takeLocked()
		b.mu.Unlock()
		b.deliver(batch, bytes, ticket, FlushCapacity)
		if admitted == len(ps) {
			return admitted, nil
		}
		b.mu.Lock()
	}
}

// armTimerLocked arms the flush timer for the current batch, reusing one
// underlying timer across batches instead of allocating per batch. Caller
// holds b.mu.
//
// A callback already fired but not yet holding b.mu when the timer is
// rearmed can observe the new epoch and flush the new batch early — a
// harmless tightening of the latency bound, never a missed flush (the
// rearmed timer fires again and finds the batch gone).
func (b *CapacityBuffer) armTimerLocked() {
	b.timerEpoch = b.epoch
	if b.timer == nil {
		b.timer = time.AfterFunc(b.maxDelay, b.timerFire)
		return
	}
	if b.timer.Stop() {
		b.stats.TimerResets++
	}
	b.timer.Reset(b.maxDelay)
}

func (b *CapacityBuffer) timerFire() {
	b.mu.Lock()
	if b.closed || b.epoch != b.timerEpoch || len(b.pending) == 0 {
		b.mu.Unlock()
		return
	}
	batch, bytes, ticket := b.takeLocked()
	b.mu.Unlock()
	b.deliver(batch, bytes, ticket, FlushTimer)
}

// takeLocked swaps out the pending batch and assigns its delivery ticket.
// Caller holds b.mu and must pass the ticket to deliver (even if it decides
// not to flush) or later tickets stall forever.
func (b *CapacityBuffer) takeLocked() ([]*packet.Packet, int, uint64) {
	batch := b.pending
	bytes := b.bytes
	b.pending = b.spare[:0]
	b.spare = nil
	b.bytes = 0
	b.epoch++
	ticket := b.takeTickets
	b.takeTickets++
	// Stop but keep the timer: the next batch rearms it with Reset.
	if b.timer != nil {
		b.timer.Stop()
	}
	return batch, bytes, ticket
}

// deliver runs the flusher outside b.mu, in ticket (= take) order, then
// recycles the batch slice.
func (b *CapacityBuffer) deliver(batch []*packet.Packet, bytes int, ticket uint64, reason FlushReason) {
	b.flushMu.Lock()
	for ticket != b.deliverNext {
		b.flushCond.Wait()
	}
	if len(batch) > 0 {
		b.flush(batch, bytes, reason)
	}
	b.deliverNext++
	b.flushCond.Broadcast()
	b.flushMu.Unlock()
	if len(batch) == 0 {
		return
	}

	b.mu.Lock()
	b.stats.Packets += uint64(len(batch))
	b.stats.Bytes += uint64(bytes)
	switch reason {
	case FlushCapacity:
		b.stats.CapacityFlush++
	case FlushTimer:
		b.stats.TimerFlush++
	case FlushManual:
		b.stats.ManualFlush++
	case FlushClose:
		b.stats.CloseFlush++
	}
	if len(batch) > b.stats.LargestBatch {
		b.stats.LargestBatch = len(batch)
	}
	if b.stats.SmallestBatch == 0 || len(batch) < b.stats.SmallestBatch {
		b.stats.SmallestBatch = len(batch)
	}
	// Park the slice for reuse by the next batch.
	for i := range batch {
		batch[i] = nil
	}
	if b.spare == nil {
		b.spare = batch[:0]
	}
	b.mu.Unlock()
}

// Flush forces any pending packets out with FlushManual.
func (b *CapacityBuffer) Flush() {
	b.mu.Lock()
	if b.closed || len(b.pending) == 0 {
		b.mu.Unlock()
		return
	}
	batch, bytes, ticket := b.takeLocked()
	b.mu.Unlock()
	b.deliver(batch, bytes, ticket, FlushManual)
}

// Close flushes any pending packets with FlushClose and rejects further
// Adds. Close is idempotent.
func (b *CapacityBuffer) Close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	var batch []*packet.Packet
	var bytes int
	var ticket uint64
	took := false
	if len(b.pending) > 0 {
		batch, bytes, ticket = b.takeLocked()
		took = true
	} else if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.mu.Unlock()
	if took {
		// deliver checks stats under mu; closed buffers still record.
		b.deliver(batch, bytes, ticket, FlushClose)
	}
}

// Len reports the number of packets currently pending.
func (b *CapacityBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.pending)
}

// Settled reports whether the buffer is fully quiescent: nothing pending
// AND no taken batch still inside a flusher invocation. A drain that only
// checks Len can race a timer flush — the batch is out of pending but not
// yet delivered, invisible to both the buffer and the downstream side.
func (b *CapacityBuffer) Settled() bool {
	b.mu.Lock()
	pending := len(b.pending)
	taken := b.takeTickets
	b.mu.Unlock()
	if pending > 0 {
		return false
	}
	b.flushMu.Lock()
	delivered := b.deliverNext
	b.flushMu.Unlock()
	return delivered == taken
}

// PendingBytes reports the wire size of the pending batch.
func (b *CapacityBuffer) PendingBytes() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bytes
}

// Capacity reports the configured flush threshold in bytes.
func (b *CapacityBuffer) Capacity() int { return b.capacity }

// MaxDelay reports the configured timer bound.
func (b *CapacityBuffer) MaxDelay() time.Duration { return b.maxDelay }

// Stats returns a snapshot of the buffer's counters.
func (b *CapacityBuffer) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}
