package buffer

// Tests for the batch-amortized Add path and the reused flush timer.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/packet"
)

func seqPacket(seq uint64, payload int) *packet.Packet {
	p := mkPacket(payload)
	p.Seq = seq
	return p
}

// TestAddBatchMatchesAddLoop feeds the same packet stream through AddBatch
// and through an Add loop and requires identical flush boundaries: batch
// amortization must not change what goes on the wire.
func TestAddBatchMatchesAddLoop(t *testing.T) {
	const n = 100
	mk := func() []*packet.Packet {
		ps := make([]*packet.Packet, n)
		for i := range ps {
			ps[i] = seqPacket(uint64(i), 32+(i%7)*16)
		}
		return ps
	}
	capacity := mk()[0].WireSize()*4 + 1

	loop := &capture{}
	bLoop := New(capacity, 0, loop.flusher)
	for _, p := range mk() {
		if err := bLoop.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	bLoop.Flush()

	batched := &capture{}
	bBatch := New(capacity, 0, batched.flusher)
	ps := mk()
	// Split the stream into uneven chunks so AddBatch crosses the
	// threshold mid-chunk, exactly at a chunk end, and not at all.
	for _, chunk := range [][]*packet.Packet{ps[:1], ps[1:7], ps[7:40], ps[40:]} {
		admitted, err := bBatch.AddBatch(chunk)
		if err != nil {
			t.Fatal(err)
		}
		if admitted != len(chunk) {
			t.Fatalf("admitted %d of %d without error", admitted, len(chunk))
		}
	}
	bBatch.Flush()

	if got, want := fmt.Sprint(batched.batches), fmt.Sprint(loop.batches); got != want {
		t.Fatalf("flush boundaries diverged:\nAddBatch: %v\nAdd loop: %v", got, want)
	}
	if got, want := fmt.Sprint(batched.bytes), fmt.Sprint(loop.bytes); got != want {
		t.Fatalf("byte accounting diverged:\nAddBatch: %v\nAdd loop: %v", got, want)
	}
}

// TestAddBatchMultipleFlushesInOneCall pushes a batch several capacities
// deep in a single call and expects every intermediate capacity flush.
func TestAddBatchMultipleFlushesInOneCall(t *testing.T) {
	c := &capture{}
	one := seqPacket(0, 64).WireSize()
	b := New(2*one, 0, c.flusher)
	ps := make([]*packet.Packet, 9)
	for i := range ps {
		ps[i] = seqPacket(uint64(i), 64)
	}
	admitted, err := b.AddBatch(ps)
	if err != nil || admitted != len(ps) {
		t.Fatalf("AddBatch = (%d, %v)", admitted, err)
	}
	if c.count() != 4 {
		t.Fatalf("got %d capacity flushes, want 4", c.count())
	}
	for i, r := range c.reasons {
		if r != FlushCapacity {
			t.Fatalf("flush %d reason = %v, want capacity", i, r)
		}
	}
	if b.Len() != 1 {
		t.Fatalf("pending = %d, want 1 remainder", b.Len())
	}
}

// TestAddBatchClosed covers both rejection up front and the partial-admit
// contract: the caller keeps ownership of ps[admitted:].
func TestAddBatchClosed(t *testing.T) {
	c := &capture{}
	b := New(1<<20, 0, c.flusher)
	b.Close()
	admitted, err := b.AddBatch([]*packet.Packet{seqPacket(0, 16)})
	if !errors.Is(err, ErrClosed) || admitted != 0 {
		t.Fatalf("AddBatch on closed = (%d, %v), want (0, ErrClosed)", admitted, err)
	}
	if _, err := b.AddBatch(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("empty AddBatch on closed = %v, want ErrClosed", err)
	}
}

// TestAddBatchEmpty is a no-op that must not arm timers or flush.
func TestAddBatchEmpty(t *testing.T) {
	c := &capture{}
	b := New(16, time.Millisecond, c.flusher)
	admitted, err := b.AddBatch(nil)
	if err != nil || admitted != 0 {
		t.Fatalf("AddBatch(nil) = (%d, %v)", admitted, err)
	}
	time.Sleep(10 * time.Millisecond)
	if c.count() != 0 {
		t.Fatal("empty AddBatch triggered a flush")
	}
}

// TestAddBatchArmsTimer verifies a below-capacity batch still gets the
// bounded-delay flush the paper's buffering promises.
func TestAddBatchArmsTimer(t *testing.T) {
	c := &capture{}
	b := New(1<<20, 5*time.Millisecond, c.flusher)
	if _, err := b.AddBatch([]*packet.Packet{seqPacket(0, 16), seqPacket(1, 16)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for c.count() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("timer flush never fired after AddBatch")
		}
		time.Sleep(time.Millisecond)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reasons[0] != FlushTimer {
		t.Fatalf("reason = %v, want timer", c.reasons[0])
	}
	if len(c.batches[0]) != 2 {
		t.Fatalf("timer flushed %d packets, want 2", len(c.batches[0]))
	}
}

// TestTimerReusedAcrossBatches checks the single-timer design: many
// batches, each armed and resolved, must not leave stale timers behind
// (a stale fire would flush a later batch early and show up as a timer
// flush where only capacity flushes are expected).
func TestTimerReusedAcrossBatches(t *testing.T) {
	c := &capture{}
	one := seqPacket(0, 64).WireSize()
	b := New(2*one, time.Hour, c.flusher) // timer can never legitimately fire
	for i := 0; i < 50; i++ {
		if err := b.Add(seqPacket(uint64(2*i), 64)); err != nil {
			t.Fatal(err)
		}
		if err := b.Add(seqPacket(uint64(2*i+1), 64)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.count(); got != 50 {
		t.Fatalf("got %d flushes, want 50", got)
	}
	for i, r := range c.reasons {
		if r != FlushCapacity {
			t.Fatalf("flush %d reason = %v, want capacity (stale timer fired?)", i, r)
		}
	}
}

// TestDeliveryOrderUnderTimerRace hammers the timer-vs-capacity flush race:
// a timer fire and a capacity flush can take consecutive batches on two
// goroutines, and delivery must still happen in take order or a
// sequence-deduping receiver drops the overtaken batch. Sequence-stamped
// packets flushed with a short timer and a small capacity must arrive in
// global order across all batches.
func TestDeliveryOrderUnderTimerRace(t *testing.T) {
	c := &capture{}
	one := mkPacket(16).WireSize()
	// Capacity of ~4 packets plus an aggressive timer maximizes take races.
	b := New(4*one, 50*time.Microsecond, c.flusher)
	const n = 4000
	var seq uint64
	for i := 0; i < n; i++ {
		p := mkPacket(16)
		p.Seq = seq
		seq++
		if err := b.Add(p); err != nil {
			t.Fatal(err)
		}
		if i%64 == 0 {
			time.Sleep(60 * time.Microsecond) // let the timer win sometimes
		}
	}
	b.Close()
	c.mu.Lock()
	defer c.mu.Unlock()
	var want uint64
	timerFlushes := 0
	for bi, batch := range c.batches {
		if c.reasons[bi] == FlushTimer {
			timerFlushes++
		}
		for _, got := range batch {
			if got != want {
				t.Fatalf("batch %d (%v): seq %d delivered, want %d", bi, c.reasons[bi], got, want)
			}
			want++
		}
	}
	if want != n {
		t.Fatalf("delivered %d packets, want %d", want, n)
	}
	if timerFlushes == 0 {
		t.Log("no timer flush raced a capacity flush this run (race not exercised)")
	}
}
