package buffer

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/packet"
)

func mkPacket(payload int) *packet.Packet {
	p := &packet.Packet{}
	p.AddBytes("payload", make([]byte, payload))
	return p
}

type capture struct {
	mu      sync.Mutex
	batches [][]uint64 // sequence numbers per batch
	bytes   []int
	reasons []FlushReason
}

func (c *capture) flusher(batch []*packet.Packet, bytes int, reason FlushReason) {
	c.mu.Lock()
	defer c.mu.Unlock()
	seqs := make([]uint64, len(batch))
	for i, p := range batch {
		seqs[i] = p.Seq
	}
	c.batches = append(c.batches, seqs)
	c.bytes = append(c.bytes, bytes)
	c.reasons = append(c.reasons, reason)
}

func (c *capture) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.batches)
}

func TestCapacityFlush(t *testing.T) {
	c := &capture{}
	// Each 100-byte-payload packet has a wire size slightly above 100;
	// capacity 300 flushes on the third packet.
	b := New(300, 0, c.flusher)
	for i := 0; i < 3; i++ {
		p := mkPacket(100)
		p.Seq = uint64(i)
		if err := b.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if c.count() != 1 {
		t.Fatalf("flushes = %d, want 1", c.count())
	}
	if got := c.reasons[0]; got != FlushCapacity {
		t.Fatalf("reason = %v", got)
	}
	if len(c.batches[0]) != 3 {
		t.Fatalf("batch size = %d, want 3", len(c.batches[0]))
	}
	if b.Len() != 0 || b.PendingBytes() != 0 {
		t.Fatal("buffer not drained after flush")
	}
}

func TestFlushIrrespectiveOfMessageCount(t *testing.T) {
	// The paper sizes buffers in bytes so a single large packet flushes
	// immediately while many small ones batch together.
	c := &capture{}
	b := New(1024, 0, c.flusher)
	if err := b.Add(mkPacket(2000)); err != nil {
		t.Fatal(err)
	}
	if c.count() != 1 || len(c.batches[0]) != 1 {
		t.Fatalf("oversized packet should flush alone: %+v", c.batches)
	}
}

func TestTimerFlush(t *testing.T) {
	c := &capture{}
	b := New(1<<20, 20*time.Millisecond, c.flusher)
	p := mkPacket(50)
	p.Seq = 7
	if err := b.Add(p); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if c.count() != 1 {
		t.Fatal("timer flush did not fire")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reasons[0] != FlushTimer {
		t.Fatalf("reason = %v, want timer", c.reasons[0])
	}
	if len(c.batches[0]) != 1 || c.batches[0][0] != 7 {
		t.Fatalf("batch = %v", c.batches[0])
	}
}

func TestTimerDoesNotFireAfterCapacityFlush(t *testing.T) {
	c := &capture{}
	b := New(60, 10*time.Millisecond, c.flusher)
	b.Add(mkPacket(100)) // flushes on capacity immediately
	time.Sleep(50 * time.Millisecond)
	if got := c.count(); got != 1 {
		t.Fatalf("flushes = %d, want 1 (stale timer fired)", got)
	}
}

func TestTimerRearmedPerBatch(t *testing.T) {
	c := &capture{}
	b := New(1<<20, 15*time.Millisecond, c.flusher)
	b.Add(mkPacket(10))
	waitFor(t, func() bool { return c.count() == 1 })
	b.Add(mkPacket(10)) // new batch must arm a fresh timer
	waitFor(t, func() bool { return c.count() == 2 })
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reasons[0] != FlushTimer || c.reasons[1] != FlushTimer {
		t.Fatalf("reasons = %v", c.reasons)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestManualFlush(t *testing.T) {
	c := &capture{}
	b := New(1<<20, 0, c.flusher)
	b.Flush() // empty: no-op
	if c.count() != 0 {
		t.Fatal("empty Flush produced a batch")
	}
	b.Add(mkPacket(10))
	b.Flush()
	if c.count() != 1 || c.reasons[0] != FlushManual {
		t.Fatalf("manual flush: %v", c.reasons)
	}
}

func TestCloseFlushesAndRejects(t *testing.T) {
	c := &capture{}
	b := New(1<<20, 0, c.flusher)
	b.Add(mkPacket(10))
	b.Close()
	if c.count() != 1 || c.reasons[0] != FlushClose {
		t.Fatalf("close flush: %v", c.reasons)
	}
	if err := b.Add(mkPacket(10)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Add after Close = %v, want ErrClosed", err)
	}
	b.Close() // idempotent
	b.Flush() // no-op after close
	if c.count() != 1 {
		t.Fatal("extra flush after close")
	}
}

func TestCloseEmptyStopsTimer(t *testing.T) {
	c := &capture{}
	b := New(1<<20, 10*time.Millisecond, c.flusher)
	b.Add(mkPacket(10))
	b.Flush() // drain; timer epoch invalidated
	b.Close()
	time.Sleep(30 * time.Millisecond)
	if c.count() != 1 {
		t.Fatalf("flushes = %d, want 1", c.count())
	}
}

func TestBytesAccounting(t *testing.T) {
	c := &capture{}
	b := New(1<<20, 0, c.flusher)
	p1, p2 := mkPacket(100), mkPacket(200)
	want := p1.WireSize() + p2.WireSize()
	b.Add(p1)
	b.Add(p2)
	if got := b.PendingBytes(); got != want {
		t.Fatalf("PendingBytes = %d, want %d", got, want)
	}
	b.Flush()
	if c.bytes[0] != want {
		t.Fatalf("flushed bytes = %d, want %d", c.bytes[0], want)
	}
}

func TestConservationUnderConcurrency(t *testing.T) {
	// Property: every packet added is flushed exactly once, in per-sender
	// order (buffer-level conservation, the paper's no-drop guarantee).
	var received atomic.Uint64
	var mu sync.Mutex
	seen := make(map[uint64]int)
	b := New(4096, 5*time.Millisecond, func(batch []*packet.Packet, bytes int, r FlushReason) {
		mu.Lock()
		for _, p := range batch {
			seen[p.Seq]++
		}
		mu.Unlock()
		received.Add(uint64(len(batch)))
	})
	const senders, perSender = 8, 2000
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				p := mkPacket(32)
				p.Seq = base + uint64(i)
				if err := b.Add(p); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint64(s) << 32)
	}
	wg.Wait()
	b.Close()
	if got := received.Load(); got != senders*perSender {
		t.Fatalf("received %d packets, want %d", got, senders*perSender)
	}
	mu.Lock()
	defer mu.Unlock()
	for seq, n := range seen {
		if n != 1 {
			t.Fatalf("packet %d delivered %d times", seq, n)
		}
	}
}

func TestStats(t *testing.T) {
	c := &capture{}
	b := New(250, 0, c.flusher)
	for i := 0; i < 6; i++ {
		b.Add(mkPacket(100)) // ~110 wire bytes; flush every 3rd... (>=250)
	}
	b.Add(mkPacket(10))
	b.Flush()
	b.Add(mkPacket(10))
	b.Close()
	s := b.Stats()
	if s.Packets != 8 {
		t.Fatalf("Packets = %d, want 8", s.Packets)
	}
	if s.CapacityFlush == 0 || s.ManualFlush != 1 || s.CloseFlush != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Flushes() != s.CapacityFlush+2 {
		t.Fatalf("Flushes = %d", s.Flushes())
	}
	if s.MeanBatchPackets() <= 0 {
		t.Fatal("MeanBatchPackets should be positive")
	}
	if s.LargestBatch < s.SmallestBatch {
		t.Fatalf("batch extremes inverted: %+v", s)
	}
	var empty Stats
	if empty.MeanBatchPackets() != 0 {
		t.Fatal("empty stats MeanBatchPackets should be 0")
	}
}

func TestFlushReasonString(t *testing.T) {
	names := map[FlushReason]string{
		FlushCapacity: "capacity", FlushTimer: "timer",
		FlushManual: "manual", FlushClose: "close", FlushReason(99): "unknown",
	}
	for r, want := range names {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", r, got, want)
		}
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil flusher should panic")
		}
	}()
	New(0, 0, nil)
}

func TestCapacityClamp(t *testing.T) {
	c := &capture{}
	b := New(0, 0, c.flusher)
	if b.Capacity() != 1 {
		t.Fatalf("Capacity = %d, want clamp to 1", b.Capacity())
	}
	if b.MaxDelay() != 0 {
		t.Fatalf("MaxDelay = %v", b.MaxDelay())
	}
}

func TestBatchSliceReuse(t *testing.T) {
	// The flusher's batch slice must be recycled, not retained: verify a
	// second batch arrives correctly after the first slice was reused.
	var first, second []uint64
	b := New(1, 0, func(batch []*packet.Packet, bytes int, r FlushReason) {
		seqs := make([]uint64, len(batch))
		for i, p := range batch {
			seqs[i] = p.Seq
		}
		if first == nil {
			first = seqs
		} else {
			second = seqs
		}
	})
	p1 := mkPacket(10)
	p1.Seq = 1
	b.Add(p1)
	p2 := mkPacket(10)
	p2.Seq = 2
	b.Add(p2)
	if len(first) != 1 || first[0] != 1 || len(second) != 1 || second[0] != 2 {
		t.Fatalf("batches corrupted by reuse: %v %v", first, second)
	}
}

func BenchmarkAddSmallPackets(b *testing.B) {
	buf := New(1<<20, 0, func(batch []*packet.Packet, bytes int, r FlushReason) {})
	p := mkPacket(50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := buf.Add(p); err != nil {
			b.Fatal(err)
		}
	}
}
