package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleSnapshot(epoch uint64) *Snapshot {
	return &Snapshot{
		Epoch: epoch,
		Entries: []Entry{
			{
				Op:       "mid",
				Index:    0,
				HasProc:  true,
				Proc:     []byte{9, 8, 7, 6},
				Dedup:    map[uint32]uint64{3: 100, 1: 42},
				DestSeqs: []uint64{17, 0, 9},
			},
			{Op: "sink", Index: 2}, // stateless: engine cursors only
			{
				Op:      "empty-blob",
				Index:   1,
				HasProc: true, // snapshotted zero bytes, still restorable
				Dedup:   map[uint32]uint64{},
			},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	want := sampleSnapshot(7)
	data, err := Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != want.Epoch || len(got.Entries) != len(want.Entries) {
		t.Fatalf("decoded %d entries at epoch %d", len(got.Entries), got.Epoch)
	}
	for i := range want.Entries {
		w, g := want.Entries[i], got.Entries[i]
		if g.Op != w.Op || g.Index != w.Index || g.HasProc != w.HasProc {
			t.Fatalf("entry %d identity mismatch: %+v vs %+v", i, g, w)
		}
		if !bytes.Equal(g.Proc, w.Proc) {
			t.Fatalf("entry %d proc blob mismatch", i)
		}
		if len(w.Dedup) != len(g.Dedup) {
			t.Fatalf("entry %d dedup mismatch: %v vs %v", i, g.Dedup, w.Dedup)
		}
		for id, next := range w.Dedup {
			if g.Dedup[id] != next {
				t.Fatalf("entry %d dedup[%d] = %d, want %d", i, id, g.Dedup[id], next)
			}
		}
		if !reflect.DeepEqual(append([]uint64{}, w.DestSeqs...), append([]uint64{}, g.DestSeqs...)) {
			t.Fatalf("entry %d dest seqs %v, want %v", i, g.DestSeqs, w.DestSeqs)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	// Dedup maps must serialize in sorted order: identical state,
	// identical bytes.
	a, err := Encode(sampleSnapshot(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(sampleSnapshot(3))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same snapshot encoded to different bytes")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data, err := Encode(sampleSnapshot(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("decoded empty snapshot")
	}
	if _, err := Decode(data[:len(data)-3]); err == nil {
		t.Fatal("decoded truncated snapshot")
	}
	if _, err := Decode(append(append([]byte{}, data...), 0xFF)); err == nil {
		t.Fatal("decoded snapshot with trailing bytes")
	}
	// Flip one byte at a time: every corruption must be detected (CRC
	// framing) — no silent misparse.
	for i := 0; i < len(data); i++ {
		mut := append([]byte{}, data...)
		mut[i] ^= 0x5A
		if snap, err := Decode(mut); err == nil {
			// The only acceptable clean decode is the identical snapshot
			// (a flip that the codec normalizes away cannot happen with
			// CRC-framed records).
			t.Fatalf("byte %d flip decoded cleanly: %+v", i, snap)
		}
	}
}

func TestLatestFallsBackPastCorruptEpoch(t *testing.T) {
	st := NewMemStore(0)
	for epoch := uint64(1); epoch <= 3; epoch++ {
		data, err := Encode(sampleSnapshot(epoch))
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Save(epoch, data); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the newest epoch in place: Latest must fall back to 2.
	if err := st.Save(3, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	snap, err := Latest(st)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 2 {
		t.Fatalf("Latest fell back to epoch %d, want 2", snap.Epoch)
	}
}

func TestLatestNoCheckpoint(t *testing.T) {
	if _, err := Latest(NewMemStore(0)); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty store: %v, want ErrNoCheckpoint", err)
	}
	st := NewMemStore(0)
	if err := st.Save(1, []byte("junk")); err != nil {
		t.Fatal(err)
	}
	if _, err := Latest(st); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("all-corrupt store: %v, want ErrNoCheckpoint", err)
	}
}

func TestMemStoreRetention(t *testing.T) {
	st := NewMemStore(2)
	for epoch := uint64(1); epoch <= 5; epoch++ {
		if err := st.Save(epoch, []byte{byte(epoch)}); err != nil {
			t.Fatal(err)
		}
	}
	epochs, err := st.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(epochs, []uint64{4, 5}) {
		t.Fatalf("retained epochs %v, want [4 5]", epochs)
	}
	if _, err := st.Load(1); err == nil {
		t.Fatal("pruned epoch still loadable")
	}
}

func TestFileStoreRoundTripAndRetention(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFileStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := uint64(1); epoch <= 4; epoch++ {
		data, err := Encode(sampleSnapshot(epoch))
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Save(epoch, data); err != nil {
			t.Fatal(err)
		}
	}
	epochs, err := st.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(epochs, []uint64{3, 4}) {
		t.Fatalf("retained epochs %v, want [3 4]", epochs)
	}
	// A second store over the same directory sees the same epochs:
	// recovery after a full process restart.
	st2, err := NewFileStore(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := Latest(st2)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 4 {
		t.Fatalf("Latest = epoch %d, want 4", snap.Epoch)
	}
	// No temp files left behind by the atomic write path.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".ckpt" {
			t.Fatalf("stray file in store dir: %s", e.Name())
		}
	}
}

func TestFileStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFileStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(9, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	epochs, err := st.Epochs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(epochs, []uint64{9}) {
		t.Fatalf("epochs %v, want [9]", epochs)
	}
	got, err := st.Load(9)
	if err != nil || string(got) != "payload" {
		t.Fatalf("Load = %q, %v", got, err)
	}
}
