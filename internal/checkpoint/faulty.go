package checkpoint

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/chaos"
)

// FaultPlan is a runtime-swappable set of checkpoint-store fault
// probabilities for FaultyStore. The zero plan clears all faults.
type FaultPlan struct {
	// FailSave is the probability a Save fails without touching the
	// inner store.
	FailSave float64
	// FailLoad is the probability a Load fails without consulting the
	// inner store (Latest falls back to an older epoch).
	FailLoad float64
	// Torn is the probability a Save writes a truncated snapshot to the
	// inner store and then reports failure — the observable half of a
	// crash mid-write. The store is honest: a torn write is never
	// reported as success, mirroring a process that died before Save
	// returned.
	Torn float64
	// Stall delays every Save by this much before it proceeds, modeling
	// a slow or hung store; the save itself then succeeds.
	Stall time.Duration
}

// FaultyStore wraps a Store with deterministic fault injection — failed
// saves/loads, torn writes, stalls — driven by a chaos.Injector so a
// soak schedule reproduces the exact same store faults per seed. Fault
// modes compose in a fixed order per Save: stall, then torn write, then
// clean failure.
type FaultyStore struct {
	inner Store
	inj   *chaos.Injector

	mu   sync.Mutex
	plan FaultPlan
}

// NewFaultyStore wraps inner with fault injection decided by inj. The
// initial plan is clean; arm faults with SetFaults.
func NewFaultyStore(inner Store, inj *chaos.Injector) *FaultyStore {
	return &FaultyStore{inner: inner, inj: inj}
}

// SetFaults atomically installs a new fault plan.
func (fs *FaultyStore) SetFaults(p FaultPlan) {
	fs.mu.Lock()
	fs.plan = p
	fs.mu.Unlock()
}

// Plan returns the current fault plan.
func (fs *FaultyStore) Plan() FaultPlan {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.plan
}

// Inner returns the wrapped store, for inspecting what actually
// committed.
func (fs *FaultyStore) Inner() Store { return fs.inner }

// Save applies the armed fault plan, then forwards to the inner store.
func (fs *FaultyStore) Save(epoch uint64, snapshot []byte) error {
	p := fs.Plan()
	if p.Stall > 0 {
		fs.inj.CountStoreFault()
		time.Sleep(p.Stall)
	}
	if fs.inj.Decide(p.Torn) && len(snapshot) > 0 {
		fs.inj.CountStoreFault()
		// Commit a truncated prefix to the inner store — the on-disk
		// state of a crash mid-write — and report the save failed.
		// Latest must skip this epoch and fall back.
		cut := 1 + fs.inj.Intn(len(snapshot))
		if cut >= len(snapshot) {
			cut = len(snapshot) - 1
		}
		if err := fs.inner.Save(epoch, snapshot[:cut]); err != nil {
			return fmt.Errorf("%w: torn write at epoch %d (inner: %v)", chaos.ErrInjected, epoch, err)
		}
		return fmt.Errorf("%w: torn write at epoch %d", chaos.ErrInjected, epoch)
	}
	if fs.inj.Decide(p.FailSave) {
		fs.inj.CountStoreFault()
		return fmt.Errorf("%w: save refused at epoch %d", chaos.ErrInjected, epoch)
	}
	return fs.inner.Save(epoch, snapshot)
}

// Load applies the armed fault plan, then forwards to the inner store.
func (fs *FaultyStore) Load(epoch uint64) ([]byte, error) {
	if fs.inj.Decide(fs.Plan().FailLoad) {
		fs.inj.CountStoreFault()
		return nil, fmt.Errorf("%w: load refused at epoch %d", chaos.ErrInjected, epoch)
	}
	return fs.inner.Load(epoch)
}

// Epochs forwards to the inner store. Listing is deliberately not
// faulted: Latest's fallback loop needs the epoch index to exercise the
// per-epoch load/decode fault paths.
func (fs *FaultyStore) Epochs() ([]uint64, error) { return fs.inner.Epochs() }

var _ Store = (*FaultyStore)(nil)
