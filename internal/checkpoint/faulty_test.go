package checkpoint

import (
	"errors"
	"testing"
	"time"

	"repro/internal/chaos"
)

func savedEpoch(t *testing.T, st Store, epoch uint64) []byte {
	t.Helper()
	data, err := Encode(sampleSnapshot(epoch))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestFaultyStoreFailSave(t *testing.T) {
	inner := NewMemStore(0)
	fs := NewFaultyStore(inner, chaos.New(1))
	fs.SetFaults(FaultPlan{FailSave: 1})
	if err := fs.Save(1, savedEpoch(t, inner, 1)); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("Save error = %v, want ErrInjected", err)
	}
	if epochs, _ := inner.Epochs(); len(epochs) != 0 {
		t.Fatalf("failed save reached inner store: %v", epochs)
	}
	fs.SetFaults(FaultPlan{})
	if err := fs.Save(1, savedEpoch(t, inner, 1)); err != nil {
		t.Fatalf("clean save failed: %v", err)
	}
	if epochs, _ := inner.Epochs(); len(epochs) != 1 {
		t.Fatalf("clean save missing from inner store: %v", epochs)
	}
}

func TestFaultyStoreFailLoadFallsBack(t *testing.T) {
	inner := NewMemStore(0)
	fs := NewFaultyStore(inner, chaos.New(2))
	for epoch := uint64(1); epoch <= 2; epoch++ {
		if err := fs.Save(epoch, savedEpoch(t, inner, epoch)); err != nil {
			t.Fatal(err)
		}
	}
	// Refuse half the loads; a refused newest load must fall back to the
	// older epoch rather than failing recovery. Only the draw where every
	// stored epoch is refused may surface ErrNoCheckpoint.
	fs.SetFaults(FaultPlan{FailLoad: 0.5})
	fellBack := false
	for i := 0; i < 100; i++ {
		snap, err := Latest(fs)
		if err != nil {
			if !errors.Is(err, ErrNoCheckpoint) {
				t.Fatalf("Latest with flaky loads: %v", err)
			}
			continue
		}
		switch snap.Epoch {
		case 2:
		case 1:
			fellBack = true
		default:
			t.Fatalf("Latest returned unexpected epoch %d", snap.Epoch)
		}
	}
	if !fellBack {
		t.Fatal("refused newest load never fell back to the older epoch")
	}
}

func TestFaultyStoreStallDelaysSave(t *testing.T) {
	inner := NewMemStore(0)
	fs := NewFaultyStore(inner, chaos.New(3))
	const stall = 50 * time.Millisecond
	fs.SetFaults(FaultPlan{Stall: stall})
	start := time.Now()
	if err := fs.Save(1, savedEpoch(t, inner, 1)); err != nil {
		t.Fatalf("stalled save failed: %v", err)
	}
	if d := time.Since(start); d < stall {
		t.Fatalf("stalled save returned after %v, want >= %v", d, stall)
	}
	if epochs, _ := inner.Epochs(); len(epochs) != 1 {
		t.Fatal("stalled save did not commit")
	}
	if st := fs.inj.Stats(); st.StoreFaults != 1 {
		t.Fatalf("stall not counted: %+v", st)
	}
}

// TestFileStoreCrashConsistencyTornWrite is the crash-consistency check
// for FileStore.Save's atomic write + directory fsync: a torn write at
// the newest epoch (the injected analogue of power loss mid-save) must
// leave every previously committed epoch readable, and Latest must fall
// back to the newest intact one.
func TestFileStoreCrashConsistencyTornWrite(t *testing.T) {
	inner, err := NewFileStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	fs := NewFaultyStore(inner, chaos.New(4))
	for epoch := uint64(1); epoch <= 3; epoch++ {
		if err := fs.Save(epoch, savedEpoch(t, inner, epoch)); err != nil {
			t.Fatal(err)
		}
	}
	fs.SetFaults(FaultPlan{Torn: 1})
	if err := fs.Save(4, savedEpoch(t, inner, 4)); !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("torn save error = %v, want ErrInjected", err)
	}
	// The torn epoch is on disk but truncated; it must never be served.
	snap, err := Latest(fs)
	if err != nil {
		t.Fatalf("Latest after torn write: %v", err)
	}
	if snap.Epoch != 3 {
		t.Fatalf("Latest served epoch %d after torn write, want 3", snap.Epoch)
	}
	// And a subsequent clean save of the same epoch repairs it.
	fs.SetFaults(FaultPlan{})
	if err := fs.Save(4, savedEpoch(t, inner, 4)); err != nil {
		t.Fatal(err)
	}
	snap, err = Latest(fs)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch != 4 {
		t.Fatalf("Latest served epoch %d after repair, want 4", snap.Epoch)
	}
}

func TestFaultyStoreDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []bool {
		inner := NewMemStore(64)
		fs := NewFaultyStore(inner, chaos.New(seed))
		fs.SetFaults(FaultPlan{FailSave: 0.5})
		var outcomes []bool
		for epoch := uint64(1); epoch <= 40; epoch++ {
			err := fs.Save(epoch, savedEpoch(t, inner, epoch))
			outcomes = append(outcomes, err == nil)
		}
		return outcomes
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("save %d diverged between equal seeds", i)
		}
	}
}
