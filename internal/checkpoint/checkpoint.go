// Package checkpoint captures and restores per-operator state so a
// supervisor can rebuild a crashed resource without losing stream
// progress. A Snapshot is the consistent image of one checkpoint epoch:
// for every operator instance it records the opaque StatefulProcessor
// blob (if the operator exposes one), the engine-owned per-stream dedup
// cursors, and the per-destination emit cursors. Snapshots are framed
// with the transport package's v2 CRC-covered record codec, so a
// truncated or corrupted checkpoint fails its checksum on load instead
// of silently restoring garbage — Latest then falls back to the newest
// epoch that still decodes.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/transport"
)

// Codec errors.
var (
	// ErrNoCheckpoint reports that a store holds no decodable snapshot.
	ErrNoCheckpoint = errors.New("checkpoint: no usable checkpoint")
	// ErrCorrupt reports a snapshot that failed structural validation
	// after its records passed CRC (e.g. inconsistent epochs).
	ErrCorrupt = errors.New("checkpoint: corrupt snapshot")
)

// manifestChannel tags the snapshot's leading manifest record; entry
// records use their index as the channel, which stays far below this.
const manifestChannel = math.MaxUint32

// Entry is the checkpointed state of one operator instance.
type Entry struct {
	// Op and Index identify the instance (operator name + replica index).
	Op    string
	Index int
	// HasProc distinguishes "operator snapshotted zero bytes" from
	// "operator is not a StatefulProcessor".
	HasProc bool
	// Proc is the operator's opaque SnapshotState blob.
	Proc []byte
	// Dedup maps stream id -> next expected sequence (the engine-owned
	// receive cursor that makes replayed packets idempotent).
	Dedup map[uint32]uint64
	// DestSeqs holds the next emit sequence per outbound destination, in
	// the instance's destination order (the engine-owned emit cursor a
	// restored operator resumes stamping from).
	DestSeqs []uint64
}

// Snapshot is one consistent checkpoint epoch across all instances of a
// job.
type Snapshot struct {
	Epoch   uint64
	Entries []Entry
}

// Encode serializes the snapshot as a sequence of CRC-framed records: a
// manifest record carrying the entry count, then one record per entry.
// Every record's seq field carries the epoch, so records from different
// epochs can never be stitched together undetected.
func Encode(s *Snapshot) ([]byte, error) {
	var buf []byte
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], uint64(len(s.Entries)))
	buf, err := transport.AppendRecord(buf, manifestChannel, s.Epoch, scratch[:n])
	if err != nil {
		return nil, err
	}
	for i := range s.Entries {
		payload := appendEntry(nil, &s.Entries[i])
		buf, err = transport.AppendRecord(buf, uint32(i), s.Epoch, payload)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// Decode parses and validates a snapshot produced by Encode.
func Decode(data []byte) (*Snapshot, error) {
	ch, epoch, payload, rest, err := transport.ReadRecord(data)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: manifest: %w", err)
	}
	if ch != manifestChannel {
		return nil, fmt.Errorf("%w: leading record is not a manifest (channel %d)", ErrCorrupt, ch)
	}
	count, n := binary.Uvarint(payload)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad manifest entry count", ErrCorrupt)
	}
	if count > uint64(len(data)) {
		// An entry record costs at least a header; more entries than
		// bytes means a corrupt count.
		return nil, fmt.Errorf("%w: entry count %d exceeds snapshot size", ErrCorrupt, count)
	}
	s := &Snapshot{Epoch: epoch, Entries: make([]Entry, 0, count)}
	for i := uint64(0); i < count; i++ {
		var entry []byte
		ch, seq, entry, restNext, err := transport.ReadRecord(rest)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: entry %d: %w", i, err)
		}
		rest = restNext
		if seq != epoch {
			return nil, fmt.Errorf("%w: entry %d epoch %d != manifest epoch %d", ErrCorrupt, i, seq, epoch)
		}
		if uint64(ch) != i {
			return nil, fmt.Errorf("%w: entry record %d carries index %d", ErrCorrupt, i, ch)
		}
		e, err := decodeEntry(entry)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: entry %d: %w", i, err)
		}
		s.Entries = append(s.Entries, e)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after last entry", ErrCorrupt, len(rest))
	}
	return s, nil
}

// appendEntry serializes one entry: name, index, proc blob, dedup
// cursors (sorted by stream id for deterministic bytes), emit cursors.
func appendEntry(dst []byte, e *Entry) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(e.Op)))
	dst = append(dst, e.Op...)
	dst = binary.AppendUvarint(dst, uint64(e.Index))
	if e.HasProc {
		dst = append(dst, 1)
		dst = binary.AppendUvarint(dst, uint64(len(e.Proc)))
		dst = append(dst, e.Proc...)
	} else {
		dst = append(dst, 0)
	}
	streams := make([]uint32, 0, len(e.Dedup))
	for id := range e.Dedup {
		streams = append(streams, id)
	}
	sort.Slice(streams, func(i, j int) bool { return streams[i] < streams[j] })
	dst = binary.AppendUvarint(dst, uint64(len(streams)))
	for _, id := range streams {
		dst = binary.AppendUvarint(dst, uint64(id))
		dst = binary.AppendUvarint(dst, e.Dedup[id])
	}
	dst = binary.AppendUvarint(dst, uint64(len(e.DestSeqs)))
	for _, seq := range e.DestSeqs {
		dst = binary.AppendUvarint(dst, seq)
	}
	return dst
}

var errTruncatedEntry = errors.New("checkpoint: truncated entry")

func decodeEntry(buf []byte) (Entry, error) {
	var e Entry
	nameLen, buf, err := readUvarint(buf)
	if err != nil {
		return e, err
	}
	if uint64(len(buf)) < nameLen {
		return e, errTruncatedEntry
	}
	e.Op = string(buf[:nameLen])
	buf = buf[nameLen:]
	idx, buf, err := readUvarint(buf)
	if err != nil {
		return e, err
	}
	if idx > math.MaxInt32 {
		return e, fmt.Errorf("%w: instance index %d", ErrCorrupt, idx)
	}
	e.Index = int(idx)
	if len(buf) < 1 {
		return e, errTruncatedEntry
	}
	hasProc := buf[0]
	buf = buf[1:]
	if hasProc > 1 {
		return e, fmt.Errorf("%w: bad proc marker %d", ErrCorrupt, hasProc)
	}
	if hasProc == 1 {
		e.HasProc = true
		var blobLen uint64
		blobLen, buf, err = readUvarint(buf)
		if err != nil {
			return e, err
		}
		if uint64(len(buf)) < blobLen {
			return e, errTruncatedEntry
		}
		e.Proc = append([]byte(nil), buf[:blobLen]...)
		buf = buf[blobLen:]
	}
	nStreams, buf, err := readUvarint(buf)
	if err != nil {
		return e, err
	}
	if nStreams > uint64(len(buf)) {
		return e, fmt.Errorf("%w: dedup count %d exceeds entry size", ErrCorrupt, nStreams)
	}
	if nStreams > 0 {
		e.Dedup = make(map[uint32]uint64, nStreams)
	}
	for i := uint64(0); i < nStreams; i++ {
		var id, next uint64
		id, buf, err = readUvarint(buf)
		if err != nil {
			return e, err
		}
		if id > math.MaxUint32 {
			return e, fmt.Errorf("%w: stream id %d overflows uint32", ErrCorrupt, id)
		}
		next, buf, err = readUvarint(buf)
		if err != nil {
			return e, err
		}
		e.Dedup[uint32(id)] = next
	}
	nDests, buf, err := readUvarint(buf)
	if err != nil {
		return e, err
	}
	if nDests > uint64(len(buf)) {
		// A dest cursor costs at least one byte on the wire.
		return e, fmt.Errorf("%w: dest count %d exceeds entry size", ErrCorrupt, nDests)
	}
	e.DestSeqs = make([]uint64, 0, nDests)
	for i := uint64(0); i < nDests; i++ {
		var seq uint64
		seq, buf, err = readUvarint(buf)
		if err != nil {
			return e, err
		}
		e.DestSeqs = append(e.DestSeqs, seq)
	}
	if len(buf) != 0 {
		return e, fmt.Errorf("%w: %d trailing bytes in entry", ErrCorrupt, len(buf))
	}
	return e, nil
}

func readUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, buf, errTruncatedEntry
	}
	return v, buf[n:], nil
}
