package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// defaultRetain is how many epochs a store keeps when the caller does
// not say: enough that a corrupt newest checkpoint still leaves usable
// fallbacks, small enough to bound storage.
const defaultRetain = 4

// Store persists encoded snapshots keyed by epoch. Implementations must
// be safe for concurrent use: the supervisor saves from its checkpoint
// loop while a recovery may be loading.
type Store interface {
	// Save durably records the snapshot for epoch, replacing any
	// previous snapshot at the same epoch.
	Save(epoch uint64, snapshot []byte) error
	// Load returns the snapshot saved for epoch.
	Load(epoch uint64) ([]byte, error)
	// Epochs lists the stored epochs in ascending order.
	Epochs() ([]uint64, error)
}

// Latest returns the newest stored snapshot that decodes cleanly. A
// corrupt or truncated newest epoch — the expected outcome of crashing
// mid-save on a store without atomic writes — falls back to the next
// older epoch rather than failing recovery. ErrNoCheckpoint means no
// stored epoch decodes (or none exist).
func Latest(s Store) (*Snapshot, error) {
	epochs, err := s.Epochs()
	if err != nil {
		return nil, err
	}
	for i := len(epochs) - 1; i >= 0; i-- {
		data, err := s.Load(epochs[i])
		if err != nil {
			continue // unreadable epoch: fall back to an older one
		}
		snap, err := Decode(data)
		if err != nil {
			continue // corrupt epoch: fall back to an older one
		}
		if snap.Epoch != epochs[i] {
			continue // snapshot stored under the wrong key
		}
		return snap, nil
	}
	return nil, ErrNoCheckpoint
}

// MemStore keeps the newest snapshots in memory. It is the default for
// tests and single-process jobs where surviving an OS process restart is
// not required (the supervisor revives resources inside the process).
type MemStore struct {
	mu     sync.Mutex
	snaps  map[uint64][]byte
	retain int
}

// NewMemStore creates an in-memory store retaining the newest retain
// epochs (<= 0 selects the default).
func NewMemStore(retain int) *MemStore {
	if retain <= 0 {
		retain = defaultRetain
	}
	return &MemStore{snaps: make(map[uint64][]byte), retain: retain}
}

// Save records a copy of snapshot under epoch and prunes old epochs.
func (m *MemStore) Save(epoch uint64, snapshot []byte) error {
	cp := append([]byte(nil), snapshot...)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snaps[epoch] = cp
	for len(m.snaps) > m.retain {
		oldest := epoch
		for e := range m.snaps {
			if e < oldest {
				oldest = e
			}
		}
		delete(m.snaps, oldest)
	}
	return nil
}

// Load returns the snapshot stored under epoch.
func (m *MemStore) Load(epoch uint64) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.snaps[epoch]
	if !ok {
		return nil, fmt.Errorf("%w: epoch %d", ErrNoCheckpoint, epoch)
	}
	return append([]byte(nil), data...), nil
}

// Epochs lists stored epochs in ascending order.
func (m *MemStore) Epochs() ([]uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	epochs := make([]uint64, 0, len(m.snaps))
	for e := range m.snaps {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	return epochs, nil
}

// FileStore persists snapshots as one file per epoch in a directory,
// written atomically (temp file + rename) so a crash mid-save leaves the
// previous epochs intact — combined with Latest's fallback, a torn write
// costs at most one checkpoint interval of progress.
type FileStore struct {
	dir    string
	retain int
	mu     sync.Mutex
}

const fileExt = ".ckpt"

// NewFileStore creates (or reuses) dir as a file-backed store retaining
// the newest retain epochs (<= 0 selects the default).
func NewFileStore(dir string, retain int) (*FileStore, error) {
	if retain <= 0 {
		retain = defaultRetain
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create store dir: %w", err)
	}
	return &FileStore{dir: dir, retain: retain}, nil
}

// Dir returns the store's directory.
func (f *FileStore) Dir() string { return f.dir }

func (f *FileStore) path(epoch uint64) string {
	// Zero-padded fixed width keeps lexical and numeric order identical.
	return filepath.Join(f.dir, fmt.Sprintf("epoch-%020d%s", epoch, fileExt))
}

// Save atomically writes the snapshot for epoch and prunes old epochs.
func (f *FileStore) Save(epoch uint64, snapshot []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	tmp, err := os.CreateTemp(f.dir, ".tmp-epoch-*")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(snapshot); err != nil {
		tmp.Close()
		removeQuiet(tmpName)
		return fmt.Errorf("checkpoint: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		removeQuiet(tmpName)
		return fmt.Errorf("checkpoint: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		removeQuiet(tmpName)
		return fmt.Errorf("checkpoint: close snapshot: %w", err)
	}
	if err := os.Rename(tmpName, f.path(epoch)); err != nil {
		removeQuiet(tmpName)
		return fmt.Errorf("checkpoint: publish snapshot: %w", err)
	}
	// The rename only became durable when the directory entry is on
	// disk: fsync the parent directory, or a power loss can forget a
	// snapshot whose Save already returned success.
	if err := syncDir(f.dir); err != nil {
		return fmt.Errorf("checkpoint: sync store dir: %w", err)
	}
	f.prune()
	return nil
}

// syncDir fsyncs a directory so renames inside it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// prune removes the oldest epoch files beyond the retention count.
// Caller holds f.mu. Removal is best-effort: a file that cannot be
// removed now is retried on the next Save, and an extra stale epoch
// never affects correctness (Latest prefers newer epochs).
func (f *FileStore) prune() {
	epochs, err := f.epochsLocked()
	if err != nil {
		return
	}
	for len(epochs) > f.retain {
		_ = os.Remove(f.path(epochs[0]))
		epochs = epochs[1:]
	}
}

// Load returns the snapshot stored for epoch.
func (f *FileStore) Load(epoch uint64) ([]byte, error) {
	data, err := os.ReadFile(f.path(epoch))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: epoch %d", ErrNoCheckpoint, epoch)
		}
		return nil, fmt.Errorf("checkpoint: read epoch %d: %w", epoch, err)
	}
	return data, nil
}

// Epochs lists stored epochs in ascending order, ignoring foreign files.
func (f *FileStore) Epochs() ([]uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epochsLocked()
}

func (f *FileStore) epochsLocked() ([]uint64, error) {
	entries, err := os.ReadDir(f.dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: list store dir: %w", err)
	}
	epochs := make([]uint64, 0, len(entries))
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasPrefix(name, "epoch-") || !strings.HasSuffix(name, fileExt) {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, "epoch-"), fileExt)
		epoch, err := strconv.ParseUint(num, 10, 64)
		if err != nil {
			continue // foreign file that happens to match the prefix
		}
		epochs = append(epochs, epoch)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	return epochs, nil
}

// removeQuiet deletes a temp file left behind by a failed save. The save
// error is what the caller reports; a leftover temp file is invisible to
// Epochs (wrong prefix) and harmless.
func removeQuiet(name string) {
	//neptune:discarderr cleanup of an orphaned temp file; the originating save error is already surfaced
	_ = os.Remove(name)
}

var (
	_ Store = (*MemStore)(nil)
	_ Store = (*FileStore)(nil)
)
