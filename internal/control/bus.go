package control

import (
	"sync"
	"sync/atomic"
)

// Bus fans control messages out to in-process subscribers. Each engine
// owns one; co-located engines exchange signals bus-to-bus, and the
// bridger feeds frames that arrived over a link into the destination
// engine's bus, so a subscriber cannot tell (and need not care) whether
// a message crossed a process boundary.
//
// Publish is lock-free on the fast path: the subscriber list is
// copy-on-write (subscribe/unsubscribe swap a fresh slice), so a
// publish races only with an atomic pointer load. Delivery is
// synchronous on the publisher's goroutine — handlers must be quick and
// must not block, the same contract as a transport read-loop callback.
type Bus struct {
	subs atomic.Pointer[[]*subscription] //neptune:cow subs
	// mu serializes subscribe/unsubscribe.
	//neptune:lock bus-subs
	mu   sync.Mutex
	next uint64 // publisher seq source (atomic)
}

type subscription struct {
	mask uint64 // bit i set = deliver Kind(i)
	fn   func(Message)
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	b := &Bus{}
	empty := make([]*subscription, 0)
	b.subs.Store(&empty)
	return b
}

// kindMask folds kinds into a bitmask; no kinds means all kinds.
func kindMask(kinds []Kind) uint64 {
	if len(kinds) == 0 {
		return ^uint64(0)
	}
	var m uint64
	for _, k := range kinds {
		m |= 1 << uint(k)
	}
	return m
}

// Subscribe registers fn for the given kinds (all kinds when none are
// given) and returns a cancel function. fn runs synchronously on the
// publisher's goroutine; it must return quickly and must not publish
// back into the same bus while holding locks the publisher might hold.
func (b *Bus) Subscribe(fn func(Message), kinds ...Kind) (cancel func()) {
	sub := &subscription{mask: kindMask(kinds), fn: fn}
	b.mu.Lock()
	old := *b.subs.Load()
	next := make([]*subscription, len(old), len(old)+1)
	copy(next, old)
	next = append(next, sub)
	b.subs.Store(&next)
	b.mu.Unlock()
	return func() {
		b.mu.Lock()
		cur := *b.subs.Load()
		pruned := make([]*subscription, 0, len(cur))
		for _, s := range cur {
			if s != sub {
				pruned = append(pruned, s)
			}
		}
		b.subs.Store(&pruned)
		b.mu.Unlock()
	}
}

// Publish delivers m to every subscriber whose kind mask matches.
// Returns the number of subscribers that received it.
func (b *Bus) Publish(m Message) int {
	subs := *b.subs.Load()
	bit := uint64(1) << uint(m.Kind)
	n := 0
	for _, s := range subs {
		if s.mask&bit != 0 {
			s.fn(m)
			n++
		}
	}
	return n
}

// NextSeq returns a fresh monotonically increasing sequence number for
// messages originated through this bus's owner.
func (b *Bus) NextSeq() uint64 {
	return atomic.AddUint64(&b.next, 1)
}
