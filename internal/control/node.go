package control

import "strings"

// nodeRefSep separates a node's ID from its advertised address when both
// must ride one wire string (NodeState's Op field names a *subject* node,
// which is not the message Origin). Node IDs therefore must not contain
// the separator; addresses may (split is on the first occurrence).
const nodeRefSep = "|"

// PackNode packs a node identity (id, advertised address) into a single
// string for NodeState's Op field. The pair must fit MaxNameLen or the
// message will fail to encode.
func PackNode(id, addr string) string {
	return id + nodeRefSep + addr
}

// UnpackNode splits a packed node reference back into (id, addr). A
// reference without a separator is treated as an ID with no address —
// the decoder never fails, because a malformed reference only degrades
// membership metadata, never correctness.
func UnpackNode(ref string) (id, addr string) {
	if i := strings.Index(ref, nodeRefSep); i >= 0 {
		return ref[:i], ref[i+1:]
	}
	return ref, ""
}
