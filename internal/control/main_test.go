package control

import (
	"testing"

	"repro/internal/testutil"
)

// TestMain gates the package's test binary on goroutine hygiene: no test
// may leak a goroutine past its own teardown.
func TestMain(m *testing.M) { testutil.CheckMain(m) }
