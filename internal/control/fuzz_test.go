package control

import (
	"bytes"
	"testing"
)

func mustEncode(t testing.TB, m Message) []byte {
	t.Helper()
	buf, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func fuzzSeed(m Message) []byte {
	buf, err := Encode(m)
	if err != nil {
		panic(err)
	}
	return buf
}

// FuzzDecodeControl drives the control-message codec over arbitrary
// bytes. Seeds cover every kind, both strings populated, and single-bit
// flips across the frame. The decoder must reject or accept without
// panicking; anything it accepts must survive a re-encode/re-decode
// round trip (canonical form), and its names must respect the bounds.
func FuzzDecodeControl(f *testing.F) {
	for _, m := range []Message{
		{Kind: KindHeartbeat, Origin: "engine-a", Seq: 9, Nanos: 1},
		{Kind: KindEpochHello, Origin: "engine-b", LinkID: 77, Epoch: 3},
		{Kind: KindWatermarkAdvertise, Origin: "c", Op: "relay", Index: 1, Level: 10, Low: 2, High: 8, TTL: 8},
		{Kind: KindCreditGrant, Origin: "c", Op: "relay", Index: 1, Seq: 5, TTL: 8},
		{Kind: KindBarrierMarker, Origin: "a", Epoch: 4},
		{Kind: KindNodeHello, Origin: "node-a", Op: "127.0.0.1:9000", Epoch: 2, Seq: 1, TTL: 4},
		{Kind: KindNodeState, Origin: "node-a", Op: PackNode("node-b", "127.0.0.1:9001"), Epoch: 3, Level: 1, TTL: 4},
		{Kind: KindNodeLeave, Origin: "node-b", Epoch: 3},
		{Kind: KindLatencyReport, Origin: "engine-a", Op: "relay", Index: 0, LinkID: 11, Level: 9_000_000, Low: 2_000_000, High: 64, TTL: 8},
	} {
		f.Add(fuzzSeed(m))
	}
	f.Add([]byte("definitely not a control frame"))
	f.Add(bytes.Repeat([]byte{0xC7}, MaxMessageSize))
	for _, off := range []int{0, 1, 2, 3, 8, 60, 64} {
		mut := fuzzSeed(Message{Kind: KindWatermarkAdvertise, Origin: "eng", Op: "op"})
		if off < len(mut) {
			mut[off] ^= 0x01
		}
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // clean rejection; panics are the bug class here
		}
		if m.Kind == 0 || m.Kind > kindMax {
			t.Fatalf("decoder accepted invalid kind %d", m.Kind)
		}
		if len(m.Origin) > MaxNameLen || len(m.Op) > MaxNameLen {
			t.Fatalf("decoder accepted over-long names: %d/%d", len(m.Origin), len(m.Op))
		}
		re := mustEncode(t, m)
		back, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if back != m {
			t.Fatalf("not canonical:\n got %+v\nwant %+v", back, m)
		}
	})
}
