// Package control is NEPTUNE's unified control plane: one typed,
// versioned signaling layer for everything that is *about* the stream
// rather than *in* it. Before this package existed the repro had three
// ad-hoc side channels — epoch-aware hello frames hard-wired into the
// resilient transport, in-process-only atomic heartbeats in the
// supervisor, and implicit backpressure where a blocked writer stalls
// the upstream emit (§III-B4). Each solved its slice of the problem and
// none composed: liveness stopped at the process boundary, and a
// three-hop pipeline only throttled its source after every intermediate
// buffer filled.
//
// The control plane replaces those bolt-ons with a single small codec
// and an in-process bus:
//
//   - Message is the typed control frame: Heartbeat, EpochHello,
//     WatermarkAdvertise, CreditGrant, BarrierMarker. The wire form is
//     versioned and CRC-framed so a corrupted or truncated frame is
//     rejected, never misinterpreted.
//   - Bus fans messages out to in-process subscribers (engines that
//     share an address space).
//   - The resilient transport multiplexes encoded messages over
//     existing data links as a dedicated frame kind (flagControl), so
//     the same signals cross TCP bridges without a second connection.
//
// Control traffic is soft state: frames are not journaled, sequenced,
// or redelivered. Anything load-bearing (a closed watermark gate, a
// liveness claim) is re-advertised periodically and expires on the
// receiving side, so a lost frame degrades to the paper-faithful
// blocking behavior instead of wedging the pipeline.
package control

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Kind discriminates the typed control messages. The constant set is
// closed: neptune-vet's controlkind analyzer checks every exported Kind
// against the //neptune:kindexhaustive switches (String here, the relay
// path in internal/core, membership delivery) and the fuzz seeds in
// fuzz_test.go, so a ninth kind cannot half-land.
//
//neptune:kindset
type Kind uint8

const (
	// KindHeartbeat is a liveness beacon: Origin engine was alive at
	// Nanos (sender clock). Receivers use arrival time, not Nanos, to
	// judge staleness, so clocks need not be synchronized.
	KindHeartbeat Kind = 1
	// KindEpochHello identifies a link on (re)connect: LinkID names the
	// logical link, Epoch its recovery incarnation. Replaces the raw
	// 8/16-byte hello payloads the resilient transport used to parse.
	KindEpochHello Kind = 2
	// KindWatermarkAdvertise tells upstream engines that the valve
	// feeding Op[Index] on Origin crossed its high watermark and closed.
	// Level/Low/High carry the valve state for observability. Soft
	// state: re-advertised every lease third while the gate is closed.
	KindWatermarkAdvertise Kind = 3
	// KindCreditGrant is the matching open: the valve drained to its low
	// watermark, upstream sources may resume.
	KindCreditGrant Kind = 4
	// KindBarrierMarker marks a checkpoint barrier: Origin reached the
	// stop-the-world barrier for checkpoint Epoch. Observability only —
	// the barrier mechanism itself is unchanged.
	KindBarrierMarker Kind = 5
	// KindNodeHello is a cluster join (or re-join) announcement: Origin
	// is the joining node's ID, Op its advertised address, and Epoch its
	// incarnation number. A node bootstraps by sending hellos to seed
	// nodes with capped exponential backoff until the cluster answers
	// with NodeState dissemination.
	KindNodeHello Kind = 6
	// KindNodeState disseminates one membership entry gossip-style:
	// Origin is the gossiping node, Op packs the subject node's identity
	// (PackNode), Epoch the subject's incarnation, and Level its
	// membership state (alive/suspect/down/evicted/left as defined by
	// internal/membership). TTL bounds relay hops.
	KindNodeState Kind = 7
	// KindNodeLeave is a graceful departure: Origin leaves the cluster at
	// incarnation Epoch. Unlike eviction, a left node may re-join with
	// the same identity without being fenced.
	KindNodeLeave Kind = 8
	// KindLatencyReport carries per-link latency telemetry for the QoS
	// controller: Op and Index locate the operator instance the link
	// feeds, LinkID names the link, Level/Low/High carry the EWMA'd p99
	// sojourn (ns), p50 sojourn (ns), and receiver queue depth. Soft
	// state like the flow signals: re-published every QoS tick, relayed
	// upstream across bridgers, and simply absent when a link is idle.
	KindLatencyReport Kind = 9

	kindMax = KindLatencyReport
)

// String names the kind for logs and metrics.
func (k Kind) String() string {
	//neptune:kindexhaustive
	switch k {
	case KindHeartbeat:
		return "heartbeat"
	case KindEpochHello:
		return "epoch-hello"
	case KindWatermarkAdvertise:
		return "watermark-advertise"
	case KindCreditGrant:
		return "credit-grant"
	case KindBarrierMarker:
		return "barrier-marker"
	case KindNodeHello:
		return "node-hello"
	case KindNodeState:
		return "node-state"
	case KindNodeLeave:
		return "node-leave"
	case KindLatencyReport:
		return "latency-report"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Message is one typed control frame. Kind selects which fields are
// meaningful; unused fields encode as zero. Messages are plain values —
// copying one never aliases the wire buffer it was decoded from.
type Message struct {
	// Kind selects the message type (required, non-zero).
	Kind Kind
	// Origin is the name of the engine that first published the message.
	// Relays forward it unchanged so receivers can dedup and attribute.
	Origin string
	// Op and Index locate the operator instance a flow message is about
	// (WatermarkAdvertise / CreditGrant).
	Op    string
	Index int32
	// Seq orders messages from one (Origin, Op, Index) publisher so a
	// stale close cannot override a newer open that raced past it.
	Seq uint64
	// Nanos is the sender's clock at publish time (UnixNano).
	Nanos int64
	// Epoch is the link recovery epoch (EpochHello) or checkpoint epoch
	// (BarrierMarker).
	Epoch uint64
	// LinkID identifies the logical link for EpochHello.
	LinkID uint64
	// Level, Low, High carry valve state on flow messages.
	Level int64
	Low   int64
	High  int64
	// TTL bounds relay hops for messages forwarded across links; a relay
	// decrements it and drops the message at zero.
	TTL uint8
}

// Wire layout (little-endian), CRC32 (Castagnoli) over everything
// before the trailing checksum:
//
//	magic     u8   = 0xC7
//	version   u8   = 1
//	kind      u8
//	ttl       u8
//	index     i32
//	seq       u64
//	nanos     i64
//	epoch     u64
//	linkID    u64
//	level     i64
//	low       i64
//	high      i64
//	originLen u8, origin bytes
//	opLen     u8, op bytes
//	crc32c    u32
const (
	codecMagic   = 0xC7
	codecVersion = 1

	fixedSize = 4 + 4 + 8*7 // magic..index + seq..high
	crcSize   = 4

	// MaxNameLen bounds Origin and Op on the wire.
	MaxNameLen = 255
	// MaxMessageSize is the largest encoded message.
	MaxMessageSize = fixedSize + 2 + 2*MaxNameLen + crcSize
)

var (
	// ErrTooShort reports a buffer smaller than a minimal message.
	ErrTooShort = errors.New("control: message too short")
	// ErrBadMagic reports a buffer that is not a control message.
	ErrBadMagic = errors.New("control: bad magic")
	// ErrBadVersion reports an unknown codec version.
	ErrBadVersion = errors.New("control: unknown version")
	// ErrBadChecksum reports a CRC mismatch.
	ErrBadChecksum = errors.New("control: checksum mismatch")
	// ErrBadKind reports an out-of-range kind.
	ErrBadKind = errors.New("control: unknown kind")
	// ErrBadLength reports inconsistent string bounds.
	ErrBadLength = errors.New("control: inconsistent length")
	// ErrNameTooLong reports an Origin or Op above MaxNameLen at encode.
	ErrNameTooLong = errors.New("control: name exceeds 255 bytes")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// EncodedSize returns the wire size of m.
func EncodedSize(m Message) int {
	return fixedSize + 1 + len(m.Origin) + 1 + len(m.Op) + crcSize
}

// AppendEncode appends the wire form of m to dst and returns the
// extended slice. It fails only on invalid input (zero/unknown kind,
// over-long names).
func AppendEncode(dst []byte, m Message) ([]byte, error) {
	if m.Kind == 0 || m.Kind > kindMax {
		return dst, ErrBadKind
	}
	if len(m.Origin) > MaxNameLen || len(m.Op) > MaxNameLen {
		return dst, ErrNameTooLong
	}
	start := len(dst)
	var fixed [fixedSize]byte
	fixed[0] = codecMagic
	fixed[1] = codecVersion
	fixed[2] = byte(m.Kind)
	fixed[3] = m.TTL
	binary.LittleEndian.PutUint32(fixed[4:], uint32(m.Index))
	binary.LittleEndian.PutUint64(fixed[8:], m.Seq)
	binary.LittleEndian.PutUint64(fixed[16:], uint64(m.Nanos))
	binary.LittleEndian.PutUint64(fixed[24:], m.Epoch)
	binary.LittleEndian.PutUint64(fixed[32:], m.LinkID)
	binary.LittleEndian.PutUint64(fixed[40:], uint64(m.Level))
	binary.LittleEndian.PutUint64(fixed[48:], uint64(m.Low))
	binary.LittleEndian.PutUint64(fixed[56:], uint64(m.High))
	dst = append(dst, fixed[:]...)
	dst = append(dst, byte(len(m.Origin)))
	dst = append(dst, m.Origin...)
	dst = append(dst, byte(len(m.Op)))
	dst = append(dst, m.Op...)
	sum := crc32.Checksum(dst[start:], castagnoli)
	var crc [crcSize]byte
	binary.LittleEndian.PutUint32(crc[:], sum)
	return append(dst, crc[:]...), nil
}

// Encode returns the wire form of m in a fresh buffer.
func Encode(m Message) ([]byte, error) {
	return AppendEncode(make([]byte, 0, EncodedSize(m)), m)
}

// Decode parses one control message from buf, which must contain
// exactly one message. The returned Message owns its strings — it never
// aliases buf, so callers may reuse the read buffer immediately.
func Decode(buf []byte) (Message, error) {
	var m Message
	if len(buf) < fixedSize+2+crcSize {
		return m, ErrTooShort
	}
	if buf[0] != codecMagic {
		return m, ErrBadMagic
	}
	if buf[1] != codecVersion {
		return m, ErrBadVersion
	}
	body, crc := buf[:len(buf)-crcSize], buf[len(buf)-crcSize:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(crc) {
		return m, ErrBadChecksum
	}
	kind := Kind(buf[2])
	if kind == 0 || kind > kindMax {
		return m, ErrBadKind
	}
	m.Kind = kind
	m.TTL = buf[3]
	m.Index = int32(binary.LittleEndian.Uint32(buf[4:]))
	m.Seq = binary.LittleEndian.Uint64(buf[8:])
	m.Nanos = int64(binary.LittleEndian.Uint64(buf[16:]))
	m.Epoch = binary.LittleEndian.Uint64(buf[24:])
	m.LinkID = binary.LittleEndian.Uint64(buf[32:])
	m.Level = int64(binary.LittleEndian.Uint64(buf[40:]))
	m.Low = int64(binary.LittleEndian.Uint64(buf[48:]))
	m.High = int64(binary.LittleEndian.Uint64(buf[56:]))
	rest := body[fixedSize:]
	originLen := int(rest[0])
	rest = rest[1:]
	if len(rest) < originLen+1 {
		return Message{}, ErrBadLength
	}
	m.Origin = string(rest[:originLen])
	rest = rest[originLen:]
	opLen := int(rest[0])
	rest = rest[1:]
	if len(rest) != opLen {
		return Message{}, ErrBadLength
	}
	m.Op = string(rest)
	return m, nil
}
