package control

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestBusKindFiltering(t *testing.T) {
	b := NewBus()
	var beats, flows, all atomic.Int64
	b.Subscribe(func(Message) { beats.Add(1) }, KindHeartbeat)
	b.Subscribe(func(Message) { flows.Add(1) }, KindWatermarkAdvertise, KindCreditGrant)
	b.Subscribe(func(Message) { all.Add(1) })

	if n := b.Publish(Message{Kind: KindHeartbeat}); n != 2 {
		t.Fatalf("heartbeat delivered to %d subscribers, want 2", n)
	}
	b.Publish(Message{Kind: KindWatermarkAdvertise})
	b.Publish(Message{Kind: KindCreditGrant})
	b.Publish(Message{Kind: KindBarrierMarker})

	if beats.Load() != 1 || flows.Load() != 2 || all.Load() != 4 {
		t.Fatalf("beats=%d flows=%d all=%d, want 1/2/4", beats.Load(), flows.Load(), all.Load())
	}
}

func TestBusCancel(t *testing.T) {
	b := NewBus()
	var n atomic.Int64
	cancel := b.Subscribe(func(Message) { n.Add(1) })
	b.Publish(Message{Kind: KindHeartbeat})
	cancel()
	cancel() // idempotent
	if got := b.Publish(Message{Kind: KindHeartbeat}); got != 0 {
		t.Fatalf("cancelled subscriber still reached: %d", got)
	}
	if n.Load() != 1 {
		t.Fatalf("subscriber ran %d times, want 1", n.Load())
	}
}

// TestBusConcurrent races publishers against subscribe/unsubscribe churn;
// the COW subscriber list must keep every publish safe (run under -race).
func TestBusConcurrent(t *testing.T) {
	b := NewBus()
	var delivered atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					b.Publish(Message{Kind: KindHeartbeat, Seq: b.NextSeq()})
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		cancel := b.Subscribe(func(Message) { delivered.Add(1) }, KindHeartbeat)
		cancel()
	}
	keep := b.Subscribe(func(Message) { delivered.Add(1) })
	close(stop)
	wg.Wait()
	b.Publish(Message{Kind: KindBarrierMarker})
	keep()
	if delivered.Load() == 0 {
		t.Fatal("no deliveries observed")
	}
}

func TestBusNextSeqMonotonic(t *testing.T) {
	b := NewBus()
	prev := uint64(0)
	for i := 0; i < 100; i++ {
		s := b.NextSeq()
		if s <= prev {
			t.Fatalf("NextSeq not monotonic: %d after %d", s, prev)
		}
		prev = s
	}
}
