package control

import (
	"errors"
	"strings"
	"testing"
)

func sampleMessages() []Message {
	return []Message{
		{Kind: KindHeartbeat, Origin: "engine-a", Seq: 1, Nanos: 123456789},
		{Kind: KindEpochHello, Origin: "engine-b", LinkID: 0xDEADBEEF, Epoch: 7},
		{
			Kind: KindWatermarkAdvertise, Origin: "engine-c", Op: "relay",
			Index: 3, Seq: 42, Level: 9000, Low: 1024, High: 8192, TTL: 8,
		},
		{Kind: KindCreditGrant, Origin: "engine-c", Op: "relay", Index: 3, Seq: 43, TTL: 8},
		{Kind: KindBarrierMarker, Origin: "engine-a", Epoch: 12},
		{Kind: KindNodeHello, Origin: "node-a", Op: "127.0.0.1:9000", Epoch: 3, Seq: 1, TTL: 4},
		{Kind: KindNodeState, Origin: "node-a", Op: PackNode("node-b", "127.0.0.1:9001"), Epoch: 5, Level: 2, TTL: 4},
		{Kind: KindNodeLeave, Origin: "node-b", Epoch: 5},
		{Kind: KindHeartbeat}, // all-zero fields but a valid kind
		{Kind: KindCreditGrant, Level: -1, Low: -2, High: -3}, // negative levels survive
	}
}

func TestPackUnpackNode(t *testing.T) {
	cases := []struct{ id, addr string }{
		{"node-a", "127.0.0.1:9000"},
		{"n", ""},
		{"node-b", "host|with|pipes:1"}, // addr may contain the separator
	}
	for _, c := range cases {
		id, addr := UnpackNode(PackNode(c.id, c.addr))
		if id != c.id || addr != c.addr {
			t.Fatalf("PackNode(%q,%q) round trip = (%q,%q)", c.id, c.addr, id, addr)
		}
	}
	if id, addr := UnpackNode("bare-id"); id != "bare-id" || addr != "" {
		t.Fatalf("bare ref = (%q,%q)", id, addr)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, want := range sampleMessages() {
		buf, err := Encode(want)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", want, err)
		}
		if len(buf) != EncodedSize(want) {
			t.Fatalf("encoded %d bytes, EncodedSize says %d", len(buf), EncodedSize(want))
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode(%+v): %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestCodecRejectsCorruption(t *testing.T) {
	buf, err := Encode(Message{Kind: KindWatermarkAdvertise, Origin: "eng", Op: "op", Level: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Every single-bit flip anywhere in the frame must be rejected: the
	// CRC covers header, fixed fields, and both strings.
	for i := range buf {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), buf...)
			mut[i] ^= 1 << bit
			if _, err := Decode(mut); err == nil {
				t.Fatalf("flip byte %d bit %d accepted", i, bit)
			}
		}
	}
	for i := 1; i < len(buf); i++ {
		if _, err := Decode(buf[:i]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", i)
		}
	}
}

func TestCodecRejectsBadInput(t *testing.T) {
	if _, err := Decode(nil); !errors.Is(err, ErrTooShort) {
		t.Fatalf("nil: got %v, want ErrTooShort", err)
	}
	if _, err := Encode(Message{}); !errors.Is(err, ErrBadKind) {
		t.Fatalf("zero kind: got %v, want ErrBadKind", err)
	}
	if _, err := Encode(Message{Kind: 99}); !errors.Is(err, ErrBadKind) {
		t.Fatalf("kind 99: got %v, want ErrBadKind", err)
	}
	long := strings.Repeat("x", MaxNameLen+1)
	if _, err := Encode(Message{Kind: KindHeartbeat, Origin: long}); !errors.Is(err, ErrNameTooLong) {
		t.Fatalf("long origin: got %v, want ErrNameTooLong", err)
	}
	if _, err := Encode(Message{Kind: KindHeartbeat, Op: long}); !errors.Is(err, ErrNameTooLong) {
		t.Fatalf("long op: got %v, want ErrNameTooLong", err)
	}
	ok, err := Encode(Message{Kind: KindHeartbeat, Origin: "a"})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), ok...)
	bad[0] = 0x00
	if _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v, want ErrBadMagic", err)
	}
	bad = append([]byte(nil), ok...)
	bad[1] = 99
	if _, err := Decode(bad); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: got %v, want ErrBadVersion", err)
	}
}

func TestDecodeDoesNotAliasInput(t *testing.T) {
	buf, err := Encode(Message{Kind: KindWatermarkAdvertise, Origin: "origin-x", Op: "op-y"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0xFF
	}
	if m.Origin != "origin-x" || m.Op != "op-y" {
		t.Fatalf("decoded strings alias the wire buffer: %+v", m)
	}
}

func TestKindString(t *testing.T) {
	for k := KindHeartbeat; k <= kindMax; k++ {
		if s := k.String(); strings.HasPrefix(s, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if s := Kind(42).String(); s != "kind(42)" {
		t.Fatalf("unknown kind string = %q", s)
	}
}
