// Package membership is NEPTUNE's cluster robustness layer: it answers
// "which engines exist, which of them are alive, and what may I safely
// do when I cannot tell" for a set of nodes connected by unreliable
// links.
//
// Three pieces compose (DESIGN §12):
//
//   - a join/bootstrap protocol: a node dials one or more seed nodes
//     with capped exponential backoff plus seeded jitter, announces its
//     identity (ID, incarnation, advertised address) as a NodeHello
//     control message, and learns the current member map from the
//     NodeState gossip the cluster answers with;
//   - an adaptive failure detector (Detector): a phi-accrual-style
//     suspicion score computed from each peer's observed heartbeat
//     inter-arrival history, so a slow or jittery link raises suspicion
//     gradually instead of flapping a fixed deadline;
//   - a per-node member map (Map) with SWIM-style incarnation
//     precedence: states only worsen at equal incarnation
//     (alive < suspect < down < evicted), and only the subject node can
//     refute suspicion, by re-announcing itself at a bumped
//     incarnation. An evicted node is fenced: its heartbeats and
//     re-join attempts at the stale incarnation are rejected until it
//     re-joins with a higher one.
//
// The package is transport-agnostic: a Node speaks through the two
// small interfaces below, carrying internal/control messages
// (NodeHello/NodeState/NodeLeave plus the existing Heartbeat kind), so
// the same state machine runs over the in-process control bus, TCP
// control frames, or an in-memory test fabric. All randomness (backoff
// jitter, beacon jitter) comes from one seeded source and all time from
// an injectable clock, so tests replay the exact same schedule.
package membership

import (
	"sync"
	"time"
)

// State is a member's lifecycle state. Order matters: at equal
// incarnation a numerically larger (worse) state always wins, which is
// what makes gossip convergent — see Map.Apply.
type State uint8

const (
	// StateAlive: heartbeats (or gossiped alive evidence) are arriving.
	StateAlive State = iota
	// StateSuspect: the detector's suspicion crossed the suspect
	// threshold. The member may rebut by bumping its incarnation.
	StateSuspect
	// StateDown: suspicion crossed the eviction threshold. Supervised
	// recovery may now act on the member.
	StateDown
	// StateEvicted: the member stayed down past the eviction dwell. It
	// is fenced — heartbeats and joins at its stale incarnation are
	// rejected until it re-joins with a higher incarnation.
	StateEvicted
	// StateLeft: the member departed gracefully (NodeLeave). Not a
	// failure; the node may re-join with the same identity unfenced.
	StateLeft
)

// String names the state for logs and tests.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDown:
		return "down"
	case StateEvicted:
		return "evicted"
	case StateLeft:
		return "left"
	default:
		return "state(?)"
	}
}

// Member is one entry of a node's member map.
type Member struct {
	ID          string
	Addr        string
	Incarnation uint64
	State       State

	// Phi is the detector's suspicion level at the last tick (0 for the
	// local node and for members already evicted or left).
	Phi float64

	// Transition stamps, for observability and test assertions. Each
	// records the most recent entry into that state (zero if never).
	AliveAt   time.Time
	SuspectAt time.Time
	DownAt    time.Time
	EvictedAt time.Time
}

// Map is a node's view of the cluster: a mutex-protected member table
// with SWIM-style precedence. It is a passive data structure — the Node
// drives it from heartbeats, gossip, and detector ticks.
type Map struct {
	//neptune:lock member-map
	mu      sync.Mutex
	members map[string]*Member
}

// NewMap returns an empty member map.
func NewMap() *Map {
	return &Map{members: make(map[string]*Member)}
}

// supersedes reports whether an update (st, inc) overrides the current
// entry (cur): a higher incarnation always wins (that is the refutation
// and re-join path), and at equal incarnation only a worse state wins.
func supersedes(cur *Member, st State, inc uint64) bool {
	if inc != cur.Incarnation {
		return inc > cur.Incarnation
	}
	return st > cur.State
}

// Apply ingests one membership claim about node id: from gossip, a
// hello, a leave, or the local detector. It reports whether the entry
// changed. Unknown members are inserted as claimed.
func (m *Map) Apply(id, addr string, st State, inc uint64, now time.Time) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur := m.members[id]
	if cur == nil {
		cur = &Member{ID: id}
		m.members[id] = cur
	} else if !supersedes(cur, st, inc) {
		if addr != "" && cur.Addr == "" {
			cur.Addr = addr
		}
		return false
	}
	if addr != "" {
		cur.Addr = addr
	}
	cur.Incarnation = inc
	if cur.State != st || cur.AliveAt.IsZero() {
		switch st {
		case StateAlive:
			cur.AliveAt = now
		case StateSuspect:
			cur.SuspectAt = now
		case StateDown:
			cur.DownAt = now
		case StateEvicted:
			cur.EvictedAt = now
		}
	}
	cur.State = st
	return true
}

// Get returns a copy of the entry for id.
func (m *Map) Get(id string) (Member, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cur, ok := m.members[id]; ok {
		return *cur, true
	}
	return Member{}, false
}

// setPhi records the detector's current suspicion for observability.
func (m *Map) setPhi(id string, phi float64) {
	m.mu.Lock()
	if cur, ok := m.members[id]; ok {
		cur.Phi = phi
	}
	m.mu.Unlock()
}

// Snapshot returns a copy of every entry, ordered by ID.
func (m *Map) Snapshot() []Member {
	m.mu.Lock()
	out := make([]Member, 0, len(m.members))
	for _, cur := range m.members {
		out = append(out, *cur)
	}
	m.mu.Unlock()
	// Insertion sort by ID — maps are small and determinism matters.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k-1].ID > out[k].ID; k-- {
			out[k-1], out[k] = out[k], out[k-1]
		}
	}
	return out
}

// Len reports the number of known members (any state).
func (m *Map) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.members)
}

// Reachable counts members whose state still counts toward quorum:
// alive or merely suspect. Down, evicted, and left members are
// unreachable.
func (m *Map) Reachable() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, cur := range m.members {
		if cur.State <= StateSuspect {
			n++
		}
	}
	return n
}

// restoreAlive returns a suspected or down member to alive at its
// current incarnation. This is a local-evidence override used when the
// member's own heartbeats resume: gossip cannot lower a state at equal
// incarnation (only the subject's refutation can), but direct arrivals
// are stronger evidence than any third-party claim.
func (m *Map) restoreAlive(id string, now time.Time) {
	m.mu.Lock()
	if cur, ok := m.members[id]; ok && (cur.State == StateSuspect || cur.State == StateDown) {
		cur.State = StateAlive
		cur.AliveAt = now
	}
	m.mu.Unlock()
}

// reset drops every entry (used when a fenced node re-joins and must
// re-sync its view from the cluster).
func (m *Map) reset() {
	m.mu.Lock()
	m.members = make(map[string]*Member)
	m.mu.Unlock()
}
