package membership

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/control"
)

// fakeClock is a mutex-protected synthetic clock shared by every node
// in a test cluster, so the whole run is a pure function of the seed.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(0, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	return c.t
}

// fabric is a synchronous in-memory transport: sends decode and deliver
// inline, and one-way blocks model asymmetric partitions (from can no
// longer reach to, while the reverse direction still works).
type fabric struct {
	mu      sync.Mutex
	nodes   map[string]*Node // by address
	blocked map[string]bool  // "from>to"
	dials   map[string]int   // bootstrap dial attempts by address
}

func newFabric() *fabric {
	return &fabric{
		nodes:   make(map[string]*Node),
		blocked: make(map[string]bool),
		dials:   make(map[string]int),
	}
}

func pairKey(from, to string) string { return from + ">" + to }

func (f *fabric) add(n *Node, addr string) {
	f.mu.Lock()
	f.nodes[addr] = n
	f.mu.Unlock()
}

func (f *fabric) remove(addr string) {
	f.mu.Lock()
	delete(f.nodes, addr)
	f.mu.Unlock()
}

func (f *fabric) block(from, to string) {
	f.mu.Lock()
	f.blocked[pairKey(from, to)] = true
	f.mu.Unlock()
}

func (f *fabric) heal(from, to string) {
	f.mu.Lock()
	delete(f.blocked, pairKey(from, to))
	f.mu.Unlock()
}

// deliver hands payload to the node at to unless the from->to direction
// is blocked. Synchronous: the receiving node reacts inline.
func (f *fabric) deliver(from, to string, payload []byte) {
	f.mu.Lock()
	target := f.nodes[to]
	cut := f.blocked[pairKey(from, to)]
	f.mu.Unlock()
	if target == nil || cut {
		return
	}
	m, err := control.Decode(payload)
	if err != nil {
		panic(err) // test fabric: nodes must emit valid frames
	}
	target.Deliver(m)
}

// port is one node's Transport on the fabric.
type port struct {
	f    *fabric
	addr string
}

func (p *port) Broadcast(payload []byte) int {
	p.f.mu.Lock()
	targets := make([]string, 0, len(p.f.nodes))
	for addr := range p.f.nodes {
		if addr != p.addr {
			targets = append(targets, addr)
		}
	}
	p.f.mu.Unlock()
	// Deterministic order.
	for i := 1; i < len(targets); i++ {
		for k := i; k > 0 && targets[k-1] > targets[k]; k-- {
			targets[k-1], targets[k] = targets[k], targets[k-1]
		}
	}
	for _, to := range targets {
		p.f.deliver(p.addr, to, payload)
	}
	return len(targets)
}

func (p *port) Dial(addr string) (Link, error) {
	p.f.mu.Lock()
	p.f.dials[addr]++
	_, ok := p.f.nodes[addr]
	p.f.mu.Unlock()
	if !ok {
		return nil, errors.New("fabric: no node at " + addr)
	}
	return &edge{f: p.f, from: p.addr, to: addr}, nil
}

type edge struct {
	f        *fabric
	from, to string
}

func (e *edge) SendControl(payload []byte) error {
	e.f.deliver(e.from, e.to, payload) // drops silently when blocked
	return nil
}

// cluster drives a set of nodes in lockstep off one fake clock.
type cluster struct {
	f     *fabric
	clock *fakeClock
	nodes []*Node
}

func testNodeOptions(id string, seeds []string, seed int64, clock *fakeClock) Options {
	return Options{
		ID:                id,
		Addr:              id, // fabric addresses are the IDs
		Seeds:             seeds,
		HeartbeatInterval: 10 * time.Millisecond,
		Beacon:            true,
		EvictAfter:        100 * time.Millisecond,
		Seed:              seed,
		Now:               clock.Now,
	}
}

// newCluster builds n nodes named node-0..node-(n-1); every node except
// node-0 uses node-0 as its seed.
func newCluster(n int, seed int64) *cluster {
	c := &cluster{f: newFabric(), clock: newFakeClock()}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("node-%d", i)
		var seeds []string
		if i > 0 {
			seeds = []string{"node-0"}
		}
		node := NewNode(&port{f: c.f, addr: id}, testNodeOptions(id, seeds, seed+int64(i), c.clock))
		c.f.add(node, id)
		c.nodes = append(c.nodes, node)
	}
	return c
}

// run advances the cluster clock by total in fixed 5ms steps, ticking
// every node at each step.
func (c *cluster) run(total time.Duration) {
	const step = 5 * time.Millisecond
	for elapsed := time.Duration(0); elapsed < total; elapsed += step {
		now := c.clock.advance(step)
		for _, n := range c.nodes {
			n.Tick(now)
		}
	}
}

func (c *cluster) node(i int) *Node { return c.nodes[i] }

func stateOf(t *testing.T, n *Node, id string) Member {
	t.Helper()
	mem, ok := n.Member(id)
	if !ok {
		t.Fatalf("%s has no entry for %s", n.ID(), id)
	}
	return mem
}

func TestClusterBootstrap(t *testing.T) {
	c := newCluster(3, 1)
	c.run(500 * time.Millisecond)
	for _, n := range c.nodes {
		if !n.Joined() {
			t.Fatalf("%s not joined after bootstrap", n.ID())
		}
		if got := n.View().Len(); got != 3 {
			t.Fatalf("%s knows %d members, want 3", n.ID(), got)
		}
		if got := n.View().Reachable(); got != 3 {
			t.Fatalf("%s reaches %d members, want 3: %+v", n.ID(), got, n.Snapshot())
		}
		for _, mem := range n.Snapshot() {
			if mem.State != StateAlive {
				t.Fatalf("%s sees %s as %v, want alive", n.ID(), mem.ID, mem.State)
			}
		}
	}
	if hellos := c.node(1).Stats().HellosSent; hellos == 0 {
		t.Fatal("seeded node bootstrapped without sending a hello")
	}
}

// TestJoinBackoffRetries covers the bootstrap retry loop: while the
// seed is unreachable the node keeps dialing with capped exponential
// backoff (so attempts are few, not one-per-tick), and it joins as soon
// as the seed appears.
func TestJoinBackoffRetries(t *testing.T) {
	c := newCluster(1, 7)
	seed := c.node(0)
	c.f.remove("node-0") // seed is down before the joiner starts
	c.nodes = nil        // and not ticking
	late := NewNode(&port{f: c.f, addr: "late"},
		testNodeOptions("late", []string{"node-0"}, 99, c.clock))
	c.f.add(late, "late")
	c.nodes = append(c.nodes, late)

	c.run(400 * time.Millisecond)
	if late.Joined() {
		t.Fatal("joined with no seed reachable")
	}
	c.f.mu.Lock()
	attempts := c.f.dials["node-0"]
	c.f.mu.Unlock()
	if attempts < 2 {
		t.Fatalf("only %d dial attempts in 400ms; the retry loop is not retrying", attempts)
	}
	// Base 10ms doubling to a 500ms cap gives ~6 rounds in 400ms; a
	// non-backing-off loop ticking at 5ms would make dozens.
	if attempts > 12 {
		t.Fatalf("%d dial attempts in 400ms; backoff is not backing off", attempts)
	}

	c.f.add(seed, "node-0") // seed comes back
	c.nodes = append(c.nodes, seed)
	c.run(1200 * time.Millisecond)
	if !late.Joined() {
		t.Fatal("not joined after the seed returned")
	}
	if mem := stateOf(t, seed, "late"); mem.State != StateAlive {
		t.Fatalf("seed sees late joiner as %v", mem.State)
	}
}

// TestAsymmetricPartitionRefutation is the SWIM refutation path: cut
// node-1 -> node-0 only. node-0 stops hearing node-1 and suspects it;
// the suspicion gossip still reaches node-1 (the reverse direction is
// open), which rebuts by bumping its incarnation; the rebuttal flows
// back through node-2. While an indirect path exists the victim must
// never be evicted.
func TestAsymmetricPartitionRefutation(t *testing.T) {
	c := newCluster(3, 3)
	c.run(500 * time.Millisecond)

	c.f.block("node-1", "node-0")
	const step = 5 * time.Millisecond
	for elapsed := time.Duration(0); elapsed < time.Second; elapsed += step {
		now := c.clock.advance(step)
		for _, n := range c.nodes {
			n.Tick(now)
		}
		if mem, ok := c.node(0).Member("node-1"); ok && mem.State >= StateEvicted {
			t.Fatalf("node-1 evicted at %v despite an indirect path", mem.EvictedAt)
		}
	}
	if refutes := c.node(1).Stats().Refutations; refutes == 0 {
		t.Fatal("node-1 never refuted the suspicion about it")
	}
	if inc := c.node(1).Incarnation(); inc < 2 {
		t.Fatalf("node-1 incarnation = %d, want bumped by refutation", inc)
	}

	c.f.heal("node-1", "node-0")
	c.run(500 * time.Millisecond)
	for _, n := range c.nodes {
		for _, mem := range n.Snapshot() {
			if mem.State != StateAlive {
				t.Fatalf("after heal %s sees %s as %v", n.ID(), mem.ID, mem.State)
			}
		}
	}
}

// TestEvictionFencingAndRejoin fully isolates node-1's outbound
// direction in a two-node cluster (no indirect path), so node-0 walks
// it through suspect -> down -> evicted, fences its stale heartbeats
// after the heal, and re-admits it only at the refutation-bumped
// incarnation.
func TestEvictionFencingAndRejoin(t *testing.T) {
	c := newCluster(2, 5)
	c.run(500 * time.Millisecond)

	c.f.block("node-1", "node-0")
	c.run(600 * time.Millisecond) // well past suspect, down, and the dwell

	mem := stateOf(t, c.node(0), "node-1")
	if mem.State != StateEvicted {
		t.Fatalf("node-1 state on node-0 = %v, want evicted", mem.State)
	}
	if mem.SuspectAt.IsZero() || mem.DownAt.IsZero() || mem.EvictedAt.IsZero() {
		t.Fatalf("missing transition stamps: %+v", mem)
	}
	if !(mem.SuspectAt.Before(mem.DownAt) && mem.DownAt.Before(mem.EvictedAt)) {
		t.Fatalf("stamps out of order: suspect %v down %v evicted %v",
			mem.SuspectAt, mem.DownAt, mem.EvictedAt)
	}

	// A hello at the stale incarnation is a fenced re-join: rejected.
	c.node(0).Deliver(control.Message{
		Kind: control.KindNodeHello, Origin: "node-1", Op: "node-1",
		Epoch: mem.Incarnation, Nanos: 1, TTL: 4,
	})
	if got := c.node(0).Stats().RejectedJoins; got != 1 {
		t.Fatalf("RejectedJoins = %d after stale hello, want 1", got)
	}

	c.f.heal("node-1", "node-0")
	c.run(500 * time.Millisecond)

	// While node-0 still held the eviction, node-1's first resumed beats
	// (still carrying liveness at the old view) were fenced out.
	if fenced := c.node(0).Stats().FencedHeartbeats; fenced == 0 {
		t.Fatal("no heartbeat was fenced during the evicted window")
	}
	after := stateOf(t, c.node(0), "node-1")
	if after.State != StateAlive {
		t.Fatalf("node-1 not re-admitted after heal: %v", after.State)
	}
	if after.Incarnation <= mem.Incarnation {
		t.Fatalf("re-admitted at incarnation %d, want > fenced %d",
			after.Incarnation, mem.Incarnation)
	}
}

// TestRestartedNodeMustBumpIncarnation is the restart fence: a node
// that crashes, loses its incarnation counter, and comes back with the
// default one is rejected until the cluster tells it the incarnation it
// was evicted at, at which point it adopts a higher one and re-joins.
func TestRestartedNodeMustBumpIncarnation(t *testing.T) {
	c := newCluster(2, 9)
	c.run(500 * time.Millisecond)

	// Kill node-1 outright: no leave, beats just stop.
	c.f.remove("node-1")
	c.nodes = c.nodes[:1]
	c.run(600 * time.Millisecond)
	fenced := stateOf(t, c.node(0), "node-1")
	if fenced.State != StateEvicted {
		t.Fatalf("dead node state = %v, want evicted", fenced.State)
	}

	// Restart with a fresh Node: incarnation falls back to 1.
	reborn := NewNode(&port{f: c.f, addr: "node-1"},
		testNodeOptions("node-1", []string{"node-0"}, 11, c.clock))
	c.f.add(reborn, "node-1")
	c.nodes = append(c.nodes, reborn)
	c.run(time.Second)

	if got := c.node(0).Stats().RejectedJoins; got == 0 {
		t.Fatal("restarted node was never rejected at its stale incarnation")
	}
	if got := reborn.Stats().SelfEvictions; got == 0 {
		t.Fatal("restarted node never learned of its eviction")
	}
	if !reborn.Joined() {
		t.Fatal("restarted node failed to re-join")
	}
	mem := stateOf(t, c.node(0), "node-1")
	if mem.State != StateAlive || mem.Incarnation <= fenced.Incarnation {
		t.Fatalf("re-join state = %v@%d, want alive above %d",
			mem.State, mem.Incarnation, fenced.Incarnation)
	}
}

func TestLeaveIsNotAFailure(t *testing.T) {
	c := newCluster(2, 13)
	c.run(500 * time.Millisecond)
	c.node(1).Close()
	if mem := stateOf(t, c.node(0), "node-1"); mem.State != StateLeft {
		t.Fatalf("after graceful leave state = %v, want left", mem.State)
	}
	c.nodes = c.nodes[:1]
	c.run(300 * time.Millisecond)
	if mem := stateOf(t, c.node(0), "node-1"); mem.State != StateLeft {
		t.Fatalf("left member drifted to %v", mem.State)
	}
}

func TestHeartbeatFromUnknownPeerIgnored(t *testing.T) {
	c := newCluster(1, 17)
	c.node(0).Deliver(control.Message{Kind: control.KindHeartbeat, Origin: "stranger", Nanos: 1})
	if _, ok := c.node(0).Member("stranger"); ok {
		t.Fatal("a bare heartbeat admitted an unknown peer")
	}
}

func TestNodeStartClose(t *testing.T) {
	// Smoke the real ticker goroutine path (most tests drive Tick
	// directly); CheckMain verifies the goroutine exits.
	f := newFabric()
	n := NewNode(&port{f: f, addr: "solo"}, Options{ID: "solo", Addr: "solo"})
	f.add(n, "solo")
	n.Start()
	n.Start() // idempotent
	time.Sleep(20 * time.Millisecond)
	n.Close()
	n.Close() // idempotent
}

// TestMembershipChurnSoak loops partition/heal churn across a 4-node
// cluster under a seeded schedule: short asymmetric partitions whose
// refutation traffic must converge the cluster back to everyone-alive
// after every round. check.sh runs this as the membership churn gate.
func TestMembershipChurnSoak(t *testing.T) {
	c := newCluster(4, 21)
	rng := rand.New(rand.NewSource(21))
	c.run(500 * time.Millisecond)

	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		from := c.nodes[rng.Intn(len(c.nodes))].ID()
		to := c.nodes[rng.Intn(len(c.nodes))].ID()
		if from != to {
			c.f.block(from, to)
			c.run(time.Duration(20+rng.Intn(60)) * time.Millisecond)
			c.f.heal(from, to)
		}
		c.run(700 * time.Millisecond) // settle: refutations land, states converge

		for _, n := range c.nodes {
			if got := n.View().Reachable(); got != len(c.nodes) {
				t.Fatalf("round %d (%s->%s cut): %s reaches %d/%d members: %+v",
					round, from, to, n.ID(), got, len(c.nodes), n.Snapshot())
			}
		}
	}
}
