package membership

import (
	"math"
	"sync"
	"time"
)

// DetectorOptions tunes the adaptive failure detector. Zero values
// select the documented defaults.
type DetectorOptions struct {
	// Window is how many inter-arrival samples are kept per peer
	// (default 64). Suspicion adapts to the most recent Window
	// heartbeats, so a link that slows down re-trains the detector
	// instead of permanently tripping it.
	Window int

	// MinStdDev floors the estimated inter-arrival deviation (default
	// 2ms). A perfectly regular history would otherwise make the
	// detector hair-triggered: one slightly late beat on a quiet
	// in-process link must not read as multiple standard deviations.
	MinStdDev time.Duration

	// InitialInterval seeds the mean before MinSamples arrivals have
	// been observed (default 200ms): a freshly admitted peer gets the
	// benefit of the doubt rather than instant suspicion.
	InitialInterval time.Duration

	// MinSamples is how many inter-arrival samples must exist before the
	// measured history replaces InitialInterval (default 3).
	MinSamples int
}

func (o *DetectorOptions) normalize() {
	if o.Window <= 0 {
		o.Window = 64
	}
	if o.MinStdDev <= 0 {
		o.MinStdDev = 2 * time.Millisecond
	}
	if o.InitialInterval <= 0 {
		o.InitialInterval = 200 * time.Millisecond
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 3
	}
}

// maxPhi caps the suspicion score where the tail probability underflows
// float64: "astronomically certain" is certain enough.
const maxPhi = 100.0

// Detector is a phi-accrual-style failure detector (Hayashibara et al.,
// the design Cassandra and Akka use): per peer it keeps a sliding
// window of heartbeat inter-arrival times and exposes a continuous
// suspicion level
//
//	phi(t) = -log10( P(next arrival later than t) )
//
// under a normal model of the observed inter-arrival distribution.
// phi ≈ 1 means roughly a 10% chance the silence is benign, phi ≈ 3 a
// 0.1% chance, and so on. Consumers pick thresholds (suspect, evict)
// instead of deadlines, so a jittery link raises suspicion smoothly and
// a recovering one lowers it the moment beats resume.
type Detector struct {
	opts DetectorOptions

	//neptune:lock member-detector
	mu    sync.Mutex
	peers map[string]*arrivalHistory
}

type arrivalHistory struct {
	last      time.Time
	intervals []time.Duration // ring buffer
	next      int             // ring cursor
	count     int             // samples collected (≤ len(intervals))
	sum       float64         // running sum of interval nanos
	sumSq     float64         // running sum of squared interval nanos
}

// NewDetector creates a detector with the given options.
func NewDetector(opts DetectorOptions) *Detector {
	opts.normalize()
	return &Detector{opts: opts, peers: make(map[string]*arrivalHistory)}
}

// Observe records one liveness arrival (a heartbeat, or equivalent
// gossip evidence) from peer id at the given time.
func (d *Detector) Observe(id string, at time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := d.peers[id]
	if h == nil {
		h = &arrivalHistory{intervals: make([]time.Duration, d.opts.Window)}
		d.peers[id] = h
	}
	if h.last.IsZero() {
		h.last = at
		return
	}
	iv := at.Sub(h.last)
	if iv <= 0 {
		return // out-of-order or duplicate delivery; keep the newer base
	}
	h.last = at
	if h.count == len(h.intervals) {
		old := float64(h.intervals[h.next])
		h.sum -= old
		h.sumSq -= old * old
	} else {
		h.count++
	}
	h.intervals[h.next] = iv
	h.next = (h.next + 1) % len(h.intervals)
	f := float64(iv)
	h.sum += f
	h.sumSq += f * f
}

// Forget drops the history for id (the member was evicted or left; a
// re-join starts a fresh history).
func (d *Detector) Forget(id string) {
	d.mu.Lock()
	delete(d.peers, id)
	d.mu.Unlock()
}

// Phi returns the current suspicion level for id at time now. An
// unknown peer (never observed) reports 0 — suspicion requires an
// expectation, and expectations come from arrivals.
func (d *Detector) Phi(id string, now time.Time) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := d.peers[id]
	if h == nil || h.last.IsZero() {
		return 0
	}
	elapsed := now.Sub(h.last)
	if elapsed <= 0 {
		return 0
	}
	mean, std := d.statsLocked(h)
	// P(interval > elapsed) under N(mean, std), via the complementary
	// error function; floored so phi stays finite.
	z := (float64(elapsed) - mean) / (std * math.Sqrt2)
	p := 0.5 * math.Erfc(z)
	if p < 1e-100 {
		p = 1e-100
	}
	phi := -math.Log10(p)
	if phi > maxPhi {
		phi = maxPhi
	}
	if phi < 0 {
		phi = 0
	}
	return phi
}

// statsLocked estimates the inter-arrival mean and deviation, falling
// back to the configured bootstrap interval while the history is thin.
func (d *Detector) statsLocked(h *arrivalHistory) (mean, std float64) {
	if h.count < d.opts.MinSamples {
		mean = float64(d.opts.InitialInterval)
		std = mean / 2
	} else {
		n := float64(h.count)
		mean = h.sum / n
		variance := h.sumSq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		std = math.Sqrt(variance)
	}
	if floor := float64(d.opts.MinStdDev); std < floor {
		std = floor
	}
	return mean, std
}

// LastHeard reports the time of the most recent arrival from id.
func (d *Detector) LastHeard(id string) (time.Time, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if h := d.peers[id]; h != nil && !h.last.IsZero() {
		return h.last, true
	}
	return time.Time{}, false
}
