package membership

import (
	"testing"
	"time"
)

func TestMapPrecedence(t *testing.T) {
	m := NewMap()
	now := at(0)
	if !m.Apply("n", "a:1", StateAlive, 1, now) {
		t.Fatal("insert of unknown member did not apply")
	}

	// Equal incarnation: worse states win, better states lose.
	if !m.Apply("n", "", StateSuspect, 1, at(10)) {
		t.Fatal("suspect at equal incarnation did not supersede alive")
	}
	if m.Apply("n", "", StateAlive, 1, at(20)) {
		t.Fatal("alive at equal incarnation superseded suspect")
	}
	if !m.Apply("n", "", StateDown, 1, at(30)) {
		t.Fatal("down at equal incarnation did not supersede suspect")
	}

	// Higher incarnation always wins: the refutation path.
	if !m.Apply("n", "", StateAlive, 2, at(40)) {
		t.Fatal("alive at higher incarnation did not supersede down")
	}
	// Stale lower incarnation never wins, even with a worse state.
	if m.Apply("n", "", StateEvicted, 1, at(50)) {
		t.Fatal("evicted at stale incarnation superseded alive@2")
	}
	mem, _ := m.Get("n")
	if mem.State != StateAlive || mem.Incarnation != 2 {
		t.Fatalf("final entry = %v@%d, want alive@2", mem.State, mem.Incarnation)
	}
	if mem.Addr != "a:1" {
		t.Fatalf("addr lost across updates: %q", mem.Addr)
	}
}

func TestMapTransitionStamps(t *testing.T) {
	m := NewMap()
	m.Apply("n", "", StateAlive, 1, at(1))
	m.Apply("n", "", StateSuspect, 1, at(2))
	m.Apply("n", "", StateDown, 1, at(3))
	m.Apply("n", "", StateEvicted, 1, at(4))
	mem, _ := m.Get("n")
	if mem.AliveAt != at(1) || mem.SuspectAt != at(2) || mem.DownAt != at(3) || mem.EvictedAt != at(4) {
		t.Fatalf("stamps = %v %v %v %v", mem.AliveAt, mem.SuspectAt, mem.DownAt, mem.EvictedAt)
	}
	if !(mem.SuspectAt.Before(mem.DownAt) && mem.DownAt.Before(mem.EvictedAt)) {
		t.Fatal("stamps not ordered suspect < down < evicted")
	}
}

func TestMapRestoreAlive(t *testing.T) {
	m := NewMap()
	m.Apply("n", "", StateAlive, 3, at(0))
	m.Apply("n", "", StateSuspect, 3, at(10))
	m.restoreAlive("n", at(20))
	mem, _ := m.Get("n")
	if mem.State != StateAlive || mem.Incarnation != 3 {
		t.Fatalf("after restore: %v@%d, want alive@3", mem.State, mem.Incarnation)
	}
	if mem.AliveAt != at(20) {
		t.Fatalf("restore did not stamp AliveAt: %v", mem.AliveAt)
	}
	// Evicted members are fenced; direct evidence must not unfence them.
	m.Apply("n", "", StateEvicted, 3, at(30))
	m.restoreAlive("n", at(40))
	if mem, _ := m.Get("n"); mem.State != StateEvicted {
		t.Fatalf("restoreAlive unfenced an evicted member: %v", mem.State)
	}
}

func TestMapReachableAndSnapshot(t *testing.T) {
	m := NewMap()
	m.Apply("c", "", StateAlive, 1, at(0))
	m.Apply("a", "", StateSuspect, 1, at(0))
	m.Apply("d", "", StateDown, 1, at(0))
	m.Apply("b", "", StateEvicted, 1, at(0))
	m.Apply("e", "", StateLeft, 1, at(0))
	if got := m.Reachable(); got != 2 {
		t.Fatalf("Reachable = %d, want 2 (alive + suspect)", got)
	}
	if got := m.Len(); got != 5 {
		t.Fatalf("Len = %d, want 5", got)
	}
	snap := m.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].ID >= snap[i].ID {
			t.Fatalf("snapshot not sorted: %q before %q", snap[i-1].ID, snap[i].ID)
		}
	}
}

func TestStateString(t *testing.T) {
	for st := StateAlive; st <= StateLeft; st++ {
		if s := st.String(); s == "state(?)" {
			t.Fatalf("state %d has no name", st)
		}
	}
	if State(99).String() != "state(?)" {
		t.Fatal("unknown state must stringify as state(?)")
	}
}

func TestMapResetDropsEverything(t *testing.T) {
	m := NewMap()
	m.Apply("a", "", StateAlive, 1, time.Unix(0, 0))
	m.reset()
	if m.Len() != 0 {
		t.Fatal("reset left members behind")
	}
}
