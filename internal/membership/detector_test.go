package membership

import (
	"math/rand"
	"testing"
	"time"
)

func at(ms int64) time.Time { return time.Unix(0, ms*int64(time.Millisecond)) }

func TestDetectorUnknownPeerIsNotSuspect(t *testing.T) {
	d := NewDetector(DetectorOptions{})
	if phi := d.Phi("ghost", at(1000)); phi != 0 {
		t.Fatalf("unknown peer phi = %v, want 0", phi)
	}
	if _, ok := d.LastHeard("ghost"); ok {
		t.Fatal("LastHeard for unknown peer reported true")
	}
}

func TestDetectorPhiRisesWithSilence(t *testing.T) {
	d := NewDetector(DetectorOptions{})
	// Regular 10ms beats for a second.
	for ms := int64(0); ms <= 1000; ms += 10 {
		d.Observe("peer", at(ms))
	}
	justAfter := d.Phi("peer", at(1005))
	late := d.Phi("peer", at(1050))
	veryLate := d.Phi("peer", at(1500))
	if justAfter > 1 {
		t.Fatalf("phi right after a beat = %v, want ~0", justAfter)
	}
	if late <= justAfter {
		t.Fatalf("phi did not rise with silence: %v then %v", justAfter, late)
	}
	if veryLate < 8 {
		t.Fatalf("phi after 50x the interval = %v, want >= 8", veryLate)
	}
	if d.Phi("peer", at(2500)) > maxPhi {
		t.Fatal("phi exceeded cap")
	}
}

func TestDetectorRecoversWhenBeatsResume(t *testing.T) {
	d := NewDetector(DetectorOptions{})
	for ms := int64(0); ms <= 500; ms += 10 {
		d.Observe("peer", at(ms))
	}
	if phi := d.Phi("peer", at(1000)); phi < 8 {
		t.Fatalf("phi during outage = %v, want high", phi)
	}
	d.Observe("peer", at(1000)) // beats resume
	if phi := d.Phi("peer", at(1005)); phi > 1 {
		t.Fatalf("phi after resume = %v, want low again", phi)
	}
}

func TestDetectorAdaptsToSlowerCadence(t *testing.T) {
	fast := NewDetector(DetectorOptions{})
	slow := NewDetector(DetectorOptions{})
	for ms := int64(0); ms <= 2000; ms += 10 {
		fast.Observe("p", at(ms))
	}
	for ms := int64(0); ms <= 2000; ms += 100 {
		slow.Observe("p", at(ms))
	}
	// 60ms of silence: many intervals for the fast cadence, benign for
	// the slow one. The detector must judge relative to history.
	fp := fast.Phi("p", at(2060))
	sp := slow.Phi("p", at(2060))
	if fp <= sp {
		t.Fatalf("fast-cadence phi %v not above slow-cadence phi %v", fp, sp)
	}
	if sp > 1 {
		t.Fatalf("slow-cadence phi after one interval-equivalent = %v, want low", sp)
	}
}

func TestDetectorBootstrapUsesInitialInterval(t *testing.T) {
	d := NewDetector(DetectorOptions{InitialInterval: 100 * time.Millisecond})
	d.Observe("p", at(0)) // one arrival: no intervals yet
	if phi := d.Phi("p", at(50)); phi > 1 {
		t.Fatalf("phi at half the bootstrap interval = %v, want low", phi)
	}
	if phi := d.Phi("p", at(2000)); phi < 3 {
		t.Fatalf("phi at 20x the bootstrap interval = %v, want suspicious", phi)
	}
}

func TestDetectorForget(t *testing.T) {
	d := NewDetector(DetectorOptions{})
	for ms := int64(0); ms <= 200; ms += 10 {
		d.Observe("p", at(ms))
	}
	d.Forget("p")
	if phi := d.Phi("p", at(5000)); phi != 0 {
		t.Fatalf("phi after Forget = %v, want 0", phi)
	}
}

// TestDetectorFalsePositiveBound is the false-positive guarantee from
// ISSUE 6: with heartbeats jittered up to 2x their nominal interval (no
// real failure anywhere), no peer may cross the eviction threshold over
// a 10-second simulated run. Fully deterministic: synthetic clock,
// seeded jitter.
func TestDetectorFalsePositiveBound(t *testing.T) {
	const (
		hb             = 10 * time.Millisecond
		run            = 10 * time.Second
		evictThreshold = 8.0
	)
	rng := rand.New(rand.NewSource(61))
	d := NewDetector(DetectorOptions{})
	now := time.Unix(0, 0)
	end := now.Add(run)
	maxSeen := 0.0
	d.Observe("p", now)
	for now.Before(end) {
		// Next beat lands between 0.5x and 2x the nominal interval.
		iv := time.Duration(float64(hb) * (0.5 + 1.5*rng.Float64()))
		next := now.Add(iv)
		// Suspicion peaks just before the late beat arrives.
		if phi := d.Phi("p", next); phi > maxSeen {
			maxSeen = phi
		}
		d.Observe("p", next)
		now = next
	}
	if maxSeen >= evictThreshold {
		t.Fatalf("jittered-but-healthy peer peaked at phi %.2f, eviction threshold is %v", maxSeen, evictThreshold)
	}
	t.Logf("peak phi under 2x jitter over %v: %.2f", run, maxSeen)
}
