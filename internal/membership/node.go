package membership

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/control"
)

// Link is one best-effort control channel toward a peer (a resilient
// transport endpoint, an in-process control link, or a test fabric
// edge). Sends may fail or silently drop; membership state is soft and
// re-advertised.
type Link interface {
	SendControl(payload []byte) error
}

// Transport is how a node reaches its cluster: Broadcast best-effort
// sends an encoded control frame on every currently-wired peer link
// (returning how many links were attempted), and Dial opens (or
// returns) a link toward a seed address for bootstrap.
type Transport interface {
	Broadcast(payload []byte) int
	Dial(addr string) (Link, error)
}

// Options configures a Node. Zero values select the documented
// defaults.
type Options struct {
	// ID is the node's cluster-wide identity (an engine name). It must
	// not contain the control.PackNode separator.
	ID string
	// Addr is the address the node advertises for others to dial.
	Addr string
	// Seeds are the addresses dialed during bootstrap. A node with no
	// seeds considers itself joined (it *is* the cluster).
	Seeds []string
	// Incarnation seeds the node's incarnation number (0 selects 1). A
	// node refutes suspicion, and re-joins after eviction, by bumping
	// it.
	Incarnation uint64

	// HeartbeatInterval is the expected peer beacon period and, when
	// Beacon is set, the node's own beacon period (default 10ms).
	HeartbeatInterval time.Duration
	// Beacon makes the node publish its own Heartbeat messages. Leave
	// false when another layer (the core supervisor's beater) already
	// beacons for this identity.
	Beacon bool
	// GossipInterval is the period of full-state NodeState
	// dissemination (default 4x HeartbeatInterval).
	GossipInterval time.Duration

	// SuspectThreshold and EvictThreshold are phi levels (default 3 and
	// 8): alive -> suspect at the first, suspect -> down at the second.
	SuspectThreshold float64
	EvictThreshold   float64
	// EvictAfter is how long a member must stay down before it is
	// evicted and fenced (default 10x HeartbeatInterval).
	EvictAfter time.Duration

	// JoinBackoffBase and JoinBackoffMax bound the capped exponential
	// backoff between bootstrap rounds (defaults 10ms and 500ms); each
	// wait adds jitter drawn from the seeded source.
	JoinBackoffBase time.Duration
	JoinBackoffMax  time.Duration

	// TTL is the relay budget stamped on outgoing membership messages
	// so multi-hop control topologies disseminate them (default 4).
	TTL uint8

	// Seed fixes the jitter schedule (backoff, beacon, gossip phases).
	Seed int64
	// Now is the clock (default time.Now). Tests inject a fake.
	Now func() time.Time

	// Detector tunes the phi-accrual failure detector.
	Detector DetectorOptions
}

func (o *Options) normalize() {
	if o.Incarnation == 0 {
		o.Incarnation = 1
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 10 * time.Millisecond
	}
	if o.GossipInterval <= 0 {
		o.GossipInterval = 4 * o.HeartbeatInterval
	}
	if o.SuspectThreshold <= 0 {
		o.SuspectThreshold = 3
	}
	if o.EvictThreshold <= 0 {
		o.EvictThreshold = 8
	}
	if o.EvictAfter <= 0 {
		o.EvictAfter = 10 * o.HeartbeatInterval
	}
	if o.JoinBackoffBase <= 0 {
		o.JoinBackoffBase = 10 * time.Millisecond
	}
	if o.JoinBackoffMax <= 0 {
		o.JoinBackoffMax = 500 * time.Millisecond
	}
	if o.JoinBackoffMax < o.JoinBackoffBase {
		o.JoinBackoffMax = o.JoinBackoffBase
	}
	if o.TTL == 0 {
		o.TTL = 4
	}
	if o.Now == nil {
		o.Now = time.Now
	}
}

// Stats counts a node's membership events.
type Stats struct {
	HellosSent       uint64 // bootstrap NodeHello attempts
	GossipRounds     uint64 // full-state dissemination rounds
	Refutations      uint64 // suspicion about self rebutted by bumping incarnation
	RejectedJoins    uint64 // fenced: hellos at a stale incarnation refused
	FencedHeartbeats uint64 // heartbeats from evicted members ignored
	SelfEvictions    uint64 // times this node learned it was evicted and re-joined
}

// Node is one cluster participant: it bootstraps through seed nodes,
// observes peer liveness through the Detector, maintains a Map of the
// cluster, disseminates it via gossip, refutes suspicion about itself,
// and fences evicted members. Drive it either with Start/Close (its own
// ticker goroutine) or deterministically with explicit Tick calls.
type Node struct {
	opts Options
	tr   Transport
	det  *Detector
	view *Map

	// mu guards the incarnation, join schedule, and rng. Never held
	// across a send: outgoing frames are collected under mu and sent
	// after release, so synchronous transports cannot deadlock two
	// nodes against each other.
	//neptune:lock member-node
	mu          sync.Mutex
	inc         uint64
	joined      bool
	rng         *rand.Rand
	nextBeat    time.Time
	nextGossip  time.Time
	nextJoin    time.Time
	joinBackoff time.Duration
	seq         uint64

	stats struct {
		hellos, gossip, refutes, rejects, fenced, selfEvict atomic.Uint64
	}

	stopCh  chan struct{}
	wg      sync.WaitGroup
	started atomic.Bool
	closed  atomic.Bool
}

// NewNode creates a node speaking over tr. It does not start any
// goroutine; call Start, or drive Tick directly.
func NewNode(tr Transport, opts Options) *Node {
	opts.normalize()
	n := &Node{
		opts:        opts,
		tr:          tr,
		det:         NewDetector(opts.Detector),
		view:        NewMap(),
		inc:         opts.Incarnation,
		joined:      len(opts.Seeds) == 0,
		rng:         rand.New(rand.NewSource(opts.Seed)),
		joinBackoff: opts.JoinBackoffBase,
		stopCh:      make(chan struct{}),
	}
	n.view.Apply(opts.ID, opts.Addr, StateAlive, n.inc, opts.Now())
	return n
}

// ID returns the node's identity.
func (n *Node) ID() string { return n.opts.ID }

// Incarnation returns the node's current incarnation number.
func (n *Node) Incarnation() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.inc
}

// Joined reports whether bootstrap completed: the node has learned
// cluster state from a remote member (or had no seeds to learn from).
func (n *Node) Joined() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.joined
}

// View returns the node's member map.
func (n *Node) View() *Map { return n.view }

// Member returns a copy of the node's entry for id.
func (n *Node) Member(id string) (Member, bool) { return n.view.Get(id) }

// Snapshot returns a copy of the node's member map, ordered by ID.
func (n *Node) Snapshot() []Member { return n.view.Snapshot() }

// Stats snapshots the node's event counters.
func (n *Node) Stats() Stats {
	return Stats{
		HellosSent:       n.stats.hellos.Load(),
		GossipRounds:     n.stats.gossip.Load(),
		Refutations:      n.stats.refutes.Load(),
		RejectedJoins:    n.stats.rejects.Load(),
		FencedHeartbeats: n.stats.fenced.Load(),
		SelfEvictions:    n.stats.selfEvict.Load(),
	}
}

// Start launches the node's ticker goroutine. Idempotent.
func (n *Node) Start() {
	if !n.started.CompareAndSwap(false, true) {
		return
	}
	period := n.opts.HeartbeatInterval / 2
	if period <= 0 {
		period = time.Millisecond
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTicker(period)
		defer t.Stop()
		for {
			select {
			case <-n.stopCh:
				return
			case <-t.C:
				n.Tick(n.opts.Now())
			}
		}
	}()
}

// Close leaves the cluster gracefully (a best-effort NodeLeave
// broadcast) and stops the ticker goroutine. Idempotent.
func (n *Node) Close() {
	if !n.closed.CompareAndSwap(false, true) {
		return
	}
	n.mu.Lock()
	inc := n.inc
	n.mu.Unlock()
	n.send(n.message(control.Message{Kind: control.KindNodeLeave, Epoch: inc}))
	close(n.stopCh)
	n.wg.Wait()
}

// message fills the shared fields of an outgoing control message.
func (n *Node) message(m control.Message) control.Message {
	m.Origin = n.opts.ID
	m.Nanos = n.opts.Now().UnixNano()
	m.TTL = n.opts.TTL
	m.Seq = atomic.AddUint64(&n.seq, 1)
	return m
}

// send encodes and broadcasts one message on every peer link.
func (n *Node) send(m control.Message) {
	buf, err := control.Encode(m)
	if err != nil {
		return
	}
	n.tr.Broadcast(buf)
}

// stateMessage builds the NodeState gossip entry for one member.
func (n *Node) stateMessage(mem Member) control.Message {
	return n.message(control.Message{
		Kind:  control.KindNodeState,
		Op:    control.PackNode(mem.ID, mem.Addr),
		Epoch: mem.Incarnation,
		Level: int64(mem.State),
	})
}

// jitter draws a deterministic duration in [0, d) from the seeded
// source (0 for non-positive d).
func (n *Node) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return time.Duration(n.rng.Int63n(int64(d)))
}

// Tick advances the node's time-driven work to now: detector state
// transitions, the beacon, gossip dissemination, and bootstrap
// attempts. Start calls it from the ticker goroutine; deterministic
// tests call it directly with synthetic clocks.
func (n *Node) Tick(now time.Time) {
	n.transitions(now)
	n.beacon(now)
	n.gossipTick(now)
	n.joinTick(now)
}

// transitions applies the detector's suspicion to the member map:
// alive -> suspect -> down as phi crosses the thresholds, down ->
// evicted after the dwell. Transitions are gossiped immediately so the
// cluster converges ahead of the next periodic round.
func (n *Node) transitions(now time.Time) {
	var out []control.Message
	for _, mem := range n.view.Snapshot() {
		if mem.ID == n.opts.ID || mem.State >= StateEvicted {
			continue
		}
		phi := n.det.Phi(mem.ID, now)
		n.view.setPhi(mem.ID, phi)
		var target State
		switch {
		case mem.State == StateDown:
			if now.Sub(mem.DownAt) < n.opts.EvictAfter {
				continue
			}
			target = StateEvicted
		case phi >= n.opts.EvictThreshold:
			target = StateDown
		case phi >= n.opts.SuspectThreshold && mem.State == StateAlive:
			target = StateSuspect
		default:
			continue
		}
		if n.view.Apply(mem.ID, "", target, mem.Incarnation, now) {
			if target == StateEvicted {
				// The fence is up: a fresh history is required before
				// this identity can accrue trust again.
				n.det.Forget(mem.ID)
			}
			refreshed, _ := n.view.Get(mem.ID)
			out = append(out, n.stateMessage(refreshed))
		}
	}
	for _, m := range out {
		n.send(m)
	}
}

// beacon publishes the node's own liveness when Beacon is enabled,
// jittering each period so co-started nodes do not beat in lockstep.
func (n *Node) beacon(now time.Time) {
	if !n.opts.Beacon {
		return
	}
	n.mu.Lock()
	due := !now.Before(n.nextBeat)
	if due {
		hb := n.opts.HeartbeatInterval
		n.nextBeat = now.Add(hb - hb/4 + time.Duration(n.rng.Int63n(int64(hb/2)+1)))
	}
	n.mu.Unlock()
	if due {
		n.send(n.message(control.Message{Kind: control.KindHeartbeat}))
	}
}

// gossipTick disseminates the full member map each period.
func (n *Node) gossipTick(now time.Time) {
	n.mu.Lock()
	due := !now.Before(n.nextGossip)
	if due {
		g := n.opts.GossipInterval
		n.nextGossip = now.Add(g + time.Duration(n.rng.Int63n(int64(g/4)+1)))
	}
	n.mu.Unlock()
	if !due {
		return
	}
	n.stats.gossip.Add(1)
	for _, mem := range n.view.Snapshot() {
		n.send(n.stateMessage(mem))
	}
}

// joinTick runs the bootstrap protocol: while not joined, dial every
// seed and send a NodeHello, backing off exponentially (capped, with
// seeded jitter) between rounds. A node re-enters this loop when it
// learns it was evicted (handleSelfClaim bumps the incarnation first).
func (n *Node) joinTick(now time.Time) {
	n.mu.Lock()
	if n.joined || now.Before(n.nextJoin) {
		n.mu.Unlock()
		return
	}
	backoff := n.joinBackoff
	n.nextJoin = now.Add(backoff + time.Duration(n.rng.Int63n(int64(backoff)+1)))
	n.joinBackoff = min(backoff*2, n.opts.JoinBackoffMax)
	inc := n.inc
	n.mu.Unlock()

	hello := n.message(control.Message{
		Kind:  control.KindNodeHello,
		Op:    n.opts.Addr,
		Epoch: inc,
	})
	buf, err := control.Encode(hello)
	if err != nil {
		return
	}
	for _, seed := range n.opts.Seeds {
		if seed == n.opts.Addr {
			continue
		}
		l, err := n.tr.Dial(seed)
		if err != nil {
			continue // unreachable seed: the backoff loop retries
		}
		n.stats.hellos.Add(1)
		_ = l.SendControl(buf) // best-effort; retried by the loop
	}
}

// Rejoin forces the node back through bootstrap under a bumped
// incarnation: the supervisor calls it after reviving this node's
// engine, so a revived identity re-introduces itself instead of
// resuming a possibly-fenced incarnation. The stale member view is
// dropped — the cluster's answer to the new hello re-syncs it.
func (n *Node) Rejoin() {
	now := n.opts.Now()
	n.mu.Lock()
	n.inc++
	n.joined = len(n.opts.Seeds) == 0
	n.joinBackoff = n.opts.JoinBackoffBase
	n.nextJoin = now
	myInc := n.inc
	n.mu.Unlock()
	for _, mem := range n.view.Snapshot() {
		if mem.ID != n.opts.ID {
			// Arrival histories spanning the outage would poison the
			// detector's statistics; peers re-accrue trust from scratch.
			n.det.Forget(mem.ID)
		}
	}
	n.view.reset()
	n.view.Apply(n.opts.ID, n.opts.Addr, StateAlive, myInc, now)
	n.send(n.message(control.Message{
		Kind:  control.KindNodeState,
		Op:    control.PackNode(n.opts.ID, n.opts.Addr),
		Epoch: myInc,
		Level: int64(StateAlive),
	}))
}

// Deliver ingests one control message addressed to (or overheard by)
// this node: heartbeats feed the detector, hellos admit joiners,
// NodeState gossip merges into the map (or triggers refutation when it
// is about us), and leaves retire members. Deliver is safe to call from
// a control-bus subscription: it is quick and never blocks on I/O
// beyond best-effort sends.
func (n *Node) Deliver(m control.Message) {
	if m.Origin == n.opts.ID || n.closed.Load() {
		return
	}
	now := n.opts.Now()
	//neptune:kindexhaustive
	switch m.Kind {
	case control.KindHeartbeat:
		n.deliverHeartbeat(m, now)
	case control.KindNodeHello:
		n.deliverHello(m, now)
	case control.KindNodeState:
		n.deliverState(m, now)
	case control.KindNodeLeave:
		n.view.Apply(m.Origin, "", StateLeft, m.Epoch, now)
		n.det.Forget(m.Origin)
	case control.KindEpochHello, control.KindWatermarkAdvertise,
		control.KindCreditGrant, control.KindBarrierMarker,
		control.KindLatencyReport:
		// Link identity, flow control, checkpoint markers, and QoS
		// latency telemetry are not membership evidence; a node
		// deliberately ignores them.
	}
}

// deliverHeartbeat feeds the detector with direct liveness evidence.
// Beats from evicted members are fenced out; beats from suspected
// members restore them locally (direct evidence beats gossip).
func (n *Node) deliverHeartbeat(m control.Message, now time.Time) {
	mem, known := n.view.Get(m.Origin)
	if !known {
		return // not a member yet; gossip or a hello introduces it
	}
	if mem.State >= StateEvicted {
		n.stats.fenced.Add(1)
		return
	}
	n.det.Observe(m.Origin, now)
	if mem.State == StateSuspect || mem.State == StateDown {
		n.view.restoreAlive(m.Origin, now)
	}
}

// deliverHello admits (or fences) a joiner and answers with a full
// state sync so the joiner learns the current member map.
func (n *Node) deliverHello(m control.Message, now time.Time) {
	inc, addr := m.Epoch, m.Op
	if mem, known := n.view.Get(m.Origin); known && mem.State == StateEvicted && inc <= mem.Incarnation {
		// Fenced: a stale identity must bump its incarnation to return.
		// Tell it so directly — its own view may predate the eviction.
		n.stats.rejects.Add(1)
		n.send(n.stateMessage(mem))
		return
	}
	n.view.Apply(m.Origin, addr, StateAlive, inc, now)
	n.det.Observe(m.Origin, now)
	for _, mem := range n.view.Snapshot() {
		n.send(n.stateMessage(mem))
	}
}

// deliverState merges one gossiped membership claim.
func (n *Node) deliverState(m control.Message, now time.Time) {
	subject, addr := control.UnpackNode(m.Op)
	st, inc := State(m.Level), m.Epoch
	if st > StateLeft {
		return // unknown state from a newer peer: ignore, stay safe
	}
	if subject == n.opts.ID {
		n.handleSelfClaim(st, inc, now)
		return
	}
	n.view.Apply(subject, addr, st, inc, now)
	if st == StateAlive {
		// Gossiped alive claims are indirect liveness evidence: they
		// keep multi-hop members trusted even when no direct link
		// carries their beats.
		n.det.Observe(subject, now)
	}
}

// handleSelfClaim reacts to gossip about this node itself. Suspicion at
// our current (or newer) incarnation is refuted by bumping it and
// re-announcing alive — only the subject may do this, which is what
// keeps false suspicion from snowballing. An eviction claim means we
// are fenced: adopt a higher incarnation, drop the stale view, and
// re-enter the join loop to re-sync.
func (n *Node) handleSelfClaim(st State, inc uint64, now time.Time) {
	n.mu.Lock()
	if st == StateAlive && inc >= n.inc {
		// The cluster echoed our own membership back: bootstrap achieved.
		n.joined = true
	}
	if st >= StateEvicted {
		// An eviction is a fence notice, not a suspicion: refuting it at
		// a higher incarnation is impossible (the fence predates any
		// bump the cluster has not yet seen), so even a claim about an
		// older incarnation of us means we are fenced and must re-join.
		// While already re-joining, repeats of the stale notice change
		// nothing — the backoff schedule must survive them.
		if !n.joined && inc < n.inc {
			n.mu.Unlock()
			return
		}
		n.inc = max(inc, n.inc) + 1
		n.joined = false
		n.joinBackoff = n.opts.JoinBackoffBase
		n.nextJoin = now // re-join immediately, then back off
		myInc := n.inc
		n.mu.Unlock()
		n.stats.selfEvict.Add(1)
		n.view.reset()
		n.view.Apply(n.opts.ID, n.opts.Addr, StateAlive, myInc, now)
		return
	}
	if st < StateSuspect || inc < n.inc {
		n.mu.Unlock()
		return // stale or benign claim; our periodic gossip supersedes it
	}
	// Suspect or down: rebut.
	n.inc = inc + 1
	myInc := n.inc
	n.mu.Unlock()
	n.stats.refutes.Add(1)
	n.view.Apply(n.opts.ID, n.opts.Addr, StateAlive, myInc, now)
	n.send(n.message(control.Message{
		Kind:  control.KindNodeState,
		Op:    control.PackNode(n.opts.ID, n.opts.Addr),
		Epoch: myInc,
		Level: int64(StateAlive),
	}))
}
