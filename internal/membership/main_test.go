package membership

import (
	"testing"

	"repro/internal/testutil"
)

func TestMain(m *testing.M) { testutil.CheckMain(m) }
