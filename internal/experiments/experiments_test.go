package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// quick is a fast option set for CI-speed runs.
var quick = Options{EngineRunTime: 60 * time.Millisecond, Trials: 2}

func checkTable(t *testing.T, tab *Table, wantID string, minRows int) {
	t.Helper()
	if tab.ID != wantID {
		t.Fatalf("ID = %q, want %q", tab.ID, wantID)
	}
	if len(tab.Rows) < minRows {
		t.Fatalf("%s: %d rows, want >= %d", wantID, len(tab.Rows), minRows)
	}
	for i, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("%s row %d has %d cells for %d columns", wantID, i, len(row), len(tab.Columns))
		}
	}
	out := tab.Render()
	if !strings.Contains(out, wantID) {
		t.Fatalf("render missing ID:\n%s", out)
	}
}

func TestRunRelaySmoke(t *testing.T) {
	res, err := RunRelay(RelayConfig{
		MsgBytes:    50,
		BufferBytes: 16 << 10,
		Batching:    true,
		Pooling:     true,
		Duration:    80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Received == 0 {
		t.Fatal("relay moved no packets")
	}
	if res.Throughput <= 0 || res.P99Latency <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.BytesOut == 0 || res.BatchesOut == 0 {
		t.Fatal("no remote traffic recorded")
	}
}

func TestTable1Quick(t *testing.T) {
	tab, err := Table1(quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, "table1", 2)
	// Shape: the individual row's switch count exceeds the batched one.
	batched, _ := strconv.ParseFloat(tab.Rows[0][1], 64)
	individual, _ := strconv.ParseFloat(tab.Rows[1][1], 64)
	if individual <= batched {
		t.Fatalf("per-message switches (%v) not above batched (%v)", individual, batched)
	}
}

func TestObjectReuseQuick(t *testing.T) {
	tab, err := ObjectReuse(quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, "objreuse", 2)
	// Allocations per packet must drop with pooling.
	withAlloc, _ := strconv.ParseFloat(tab.Rows[0][1], 64)
	withoutAlloc, _ := strconv.ParseFloat(tab.Rows[1][1], 64)
	if withAlloc >= withoutAlloc {
		t.Fatalf("pooled alloc/pkt (%v) not below unpooled (%v)", withAlloc, withoutAlloc)
	}
}

func TestFig4Quick(t *testing.T) {
	tab, err := Fig4(Options{EngineRunTime: 100 * time.Millisecond, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, "fig4", 4)
}

func TestCompressionQuick(t *testing.T) {
	tab, err := Compression(quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, "compression", 6)
	if len(tab.Notes) < 6 {
		t.Fatalf("expected Tukey notes, got %v", tab.Notes)
	}
}

func TestFig2Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("fig2 sweep is 36 engine runs")
	}
	tab, err := Fig2(Options{EngineRunTime: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, "fig2", 36)
}

func TestClusterFigures(t *testing.T) {
	for _, c := range []struct {
		name string
		fn   func() (*Table, error)
		rows int
	}{
		{"fig5", Fig5, 11},
		{"fig6", Fig6, 10},
		{"fig7", Fig7, 12},
		{"fig9", Fig9, 8},
		{"fig10", Fig10, 2},
		{"headline", Headline, 4},
	} {
		tab, err := c.fn()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		checkTable(t, tab, c.name, c.rows)
	}
}

func TestFig10Significance(t *testing.T) {
	tab, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	var cpuNote, memNote string
	for _, n := range tab.Notes {
		if strings.HasPrefix(n, "CPU") {
			cpuNote = n
		}
		if strings.HasPrefix(n, "memory") {
			memNote = n
		}
	}
	if cpuNote == "" || memNote == "" {
		t.Fatalf("missing t-test notes: %v", tab.Notes)
	}
	// CPU difference must be significant (p tiny).
	if !strings.Contains(cpuNote, "p = 0.0000") {
		t.Errorf("CPU t-test not clearly significant: %s", cpuNote)
	}
}

func TestAblationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is 8 engine runs")
	}
	tab, err := Ablation(quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, "ablation", 8)
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Columns: []string{"a", "longer"}}
	tab.AddRow("1", "2")
	tab.AddNote("note %d", 7)
	out := tab.Render()
	for _, want := range []string{"## x — demo", "a  longer", "note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestVersusInProcessQuick(t *testing.T) {
	tab, err := VersusInProcess(quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tab, "fig7-engine", 4)
}
