package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
)

// Options tune how heavy the engine-driving experiments are. The zero
// value requests defaults (used by cmd/neptune-bench); tests pass smaller
// values.
type Options struct {
	// EngineRunTime is the measurement window per real-engine run.
	EngineRunTime time.Duration
	// Trials is the repetition count for statistical experiments.
	Trials int
}

func (o *Options) defaults() {
	if o.EngineRunTime <= 0 {
		o.EngineRunTime = 400 * time.Millisecond
	}
	if o.Trials <= 0 {
		o.Trials = 5
	}
}

// Fig2BufferSizes is the swept application-level buffer sizes (1 KB–1 MB,
// as in the paper).
var Fig2BufferSizes = []int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

// Fig2MessageSizes spans the paper's 50 B–10 KB message range, weighted
// toward the 50–400 B band typical of IoT datasets.
var Fig2MessageSizes = []int{50, 100, 200, 400, 1024, 10240}

// Fig2 regenerates Figure 2: throughput, end-to-end latency, and
// bandwidth usage versus application-level buffer size for different
// message sizes, on the three-stage message relay.
//
// The modeled columns come from the cluster testbed model (1 Gbps links);
// the measured columns come from driving the real engine in-process and
// reflect this machine, not the paper's cluster — their role is to show
// the same qualitative shape (throughput rising with buffer size,
// latency growing with it).
func Fig2(opts Options) (*Table, error) {
	opts.defaults()
	t := &Table{
		ID:    "fig2",
		Title: "Throughput, latency and bandwidth vs. buffer size (3-stage relay)",
		Columns: []string{
			"msg", "buffer",
			"model-tput", "model-lat-p99", "model-bw-util",
			"meas-tput", "meas-lat-p50", "meas-lat-p99",
		},
	}
	for _, msg := range Fig2MessageSizes {
		for _, buf := range Fig2BufferSizes {
			c := cluster.New(2)
			job := cluster.RelayJob(cluster.Neptune, msg, buf, 0, 1)
			res, _, err := c.Solve([]cluster.JobSpec{job}, time.Minute)
			if err != nil {
				return nil, err
			}
			// The paper reports application-level bandwidth (goodput) as
			// a fraction of the 1 Gbps link; the relay crosses two links,
			// so divide the job-wide goodput across them.
			util := res[0].GoodputBits / 2 / 1e9
			meas, err := RunRelay(RelayConfig{
				MsgBytes:    msg,
				BufferBytes: buf,
				Batching:    true,
				Pooling:     true,
				Duration:    opts.EngineRunTime,
			})
			if err != nil {
				return nil, err
			}
			t.AddRow(
				fmt.Sprintf("%dB", msg),
				byteSize(buf),
				metrics.FormatRate(res[0].Throughput),
				res[0].P99Latency.Round(10*time.Microsecond).String(),
				fmt.Sprintf("%.3f", util),
				metrics.FormatRate(meas.Throughput),
				meas.P50Latency.Round(10*time.Microsecond).String(),
				meas.P99Latency.Round(10*time.Microsecond).String(),
			)
		}
	}
	t.AddNote("model bandwidth reaches %.3f of 1 Gbps at 1 MB buffers (paper: 0.937)",
		modelUtilAt(1<<20, 10240))
	t.AddNote("paper shape: throughput rises to a plateau with buffer size; latency grows with buffer size; <10 ms latency at 16 KB buffers")
	return t, nil
}

// modelUtilAt returns the modeled goodput fraction of the 1 Gbps link for
// one buffer and message size.
func modelUtilAt(buf, msg int) float64 {
	c := cluster.New(2)
	res, _, err := c.Solve([]cluster.JobSpec{cluster.RelayJob(cluster.Neptune, msg, buf, 0, 1)}, time.Minute)
	if err != nil {
		return 0
	}
	return res[0].GoodputBits / 2 / 1e9
}

// byteSize renders a byte count compactly ("16K", "1M").
func byteSize(n int) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dK", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
