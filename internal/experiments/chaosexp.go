package experiments

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/packet"
	"repro/internal/transport"
)

// Chaos measures delivery integrity of the resilient TCP transport under
// injected link faults — a robustness study the paper assumes away (its
// evaluation runs on a healthy cluster; see DESIGN.md on the
// fault-tolerance model). Each scenario runs the same two-stage job over
// a loopback TCP link, injects a deterministic fault schedule mid-stream,
// and reports what arrived: lost or duplicated packets at the sink would
// falsify the effectively-once claim, and the reconnect/redelivery
// counters show the recovery machinery actually engaged.
func Chaos(opts Options) (*Table, error) {
	opts.defaults()
	t := &Table{
		ID:    "chaos",
		Title: "Delivery under injected link faults (resilient TCP transport)",
		Columns: []string{
			"scenario", "sent", "delivered", "lost", "duplicated",
			"reconnects", "redelivered frames",
		},
	}
	const n = 30_000
	scenarios := []struct {
		name  string
		fault func(inj *chaos.Injector, st *chaosState)
	}{
		{"healthy link", func(*chaos.Injector, *chaosState) {}},
		{"connection cut x2", func(inj *chaos.Injector, st *chaosState) {
			st.waitProgress(n / 4)
			inj.CutAll()
			st.waitReconnects(1)
			st.waitProgress(n / 2)
			inj.CutAll()
			st.waitReconnects(2)
		}},
		{"partition + heal", func(inj *chaos.Injector, st *chaosState) {
			st.waitProgress(n / 3)
			inj.Partition()
			time.Sleep(50 * time.Millisecond)
			inj.Heal()
			st.waitReconnects(1)
		}},
		{"wire corruption x3", func(inj *chaos.Injector, st *chaosState) {
			for i, at := range []uint64{n / 5, (2 * n) / 5, (3 * n) / 5} {
				st.waitProgress(at)
				inj.CorruptOnce()
				want := uint64(i + 1)
				waitUntil(func() bool { return inj.Stats().CorruptedWrites >= want })
			}
			st.waitReconnects(1)
		}},
	}
	for _, sc := range scenarios {
		r, err := runChaosScenario(n, sc.fault)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		t.AddRow(sc.name,
			fmt.Sprint(n), fmt.Sprint(r.delivered),
			fmt.Sprint(r.lost), fmt.Sprint(r.duplicated),
			fmt.Sprint(r.reconnects), fmt.Sprint(r.redelivered))
	}
	t.AddNote("Faults are injected by a seeded chaos.Injector between the " +
		"sender's framing layer and the kernel socket; every scenario runs " +
		"the same deterministic schedule.")
	t.AddNote("Effectively-once holds when lost = duplicated = 0 in every " +
		"row; non-zero reconnects/redelivered rows show recovery (not a " +
		"fault-free run) produced that outcome.")
	return t, nil
}

type chaosResult struct {
	delivered   uint64
	lost        uint64
	duplicated  uint64
	reconnects  uint64
	redelivered uint64
}

// chaosState lets a fault schedule synchronize with the running job, so
// every fault provably lands mid-stream instead of racing the drain.
type chaosState struct {
	progress func() uint64 // packets seen at the sink
	job      *core.Job
}

// waitProgress blocks until the sink has seen at least want packets
// (bounded, so a wedged run still terminates and reports its loss).
func (st *chaosState) waitProgress(want uint64) {
	waitUntil(func() bool { return st.progress() >= want })
}

// waitReconnects blocks until the job's links have reconnected at least
// want times in total.
func (st *chaosState) waitReconnects(want uint64) {
	waitUntil(func() bool {
		var got uint64
		for _, h := range st.job.LinkHealth() {
			got += h.Reconnects
		}
		return got >= want
	})
}

// waitUntil polls cond for up to 30 s.
func waitUntil(cond func() bool) {
	deadline := time.Now().Add(30 * time.Second)
	for !cond() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}

// runChaosScenario pushes n sequenced packets through src -> sink across
// two engines bridged by the resilient TCP transport, running fault
// concurrently, and tallies delivery integrity at the sink.
func runChaosScenario(n int, fault func(*chaos.Injector, *chaosState)) (chaosResult, error) {
	cfg := core.DefaultConfig()
	cfg.BufferSize = 4 << 10
	cfg.FlushInterval = time.Millisecond
	eA, err := core.NewEngine("chaos-send", cfg)
	if err != nil {
		return chaosResult{}, err
	}
	eB, err := core.NewEngine("chaos-recv", cfg)
	if err != nil {
		return chaosResult{}, err
	}
	spec := &graph.Spec{
		Name: "chaos",
		Operators: []graph.OperatorSpec{
			{Name: "src", Kind: graph.KindSource},
			{Name: "sink", Kind: graph.KindProcessor},
		},
		Links: []graph.LinkSpec{{From: "src", To: "sink"}},
	}
	spec.Normalize()
	job, err := core.NewJob(spec, cfg)
	if err != nil {
		return chaosResult{}, err
	}
	var emitted int
	job.SetSource("src", func(int) core.Source {
		return core.SourceFunc(func(ctx *core.OpContext) error {
			if emitted >= n {
				return io.EOF
			}
			if emitted%500 == 499 {
				// Pace the source so the stream stays in flight long
				// enough for the fault schedule to land mid-stream.
				time.Sleep(time.Millisecond)
			}
			p := ctx.NewPacket()
			p.AddInt64("i", int64(emitted))
			emitted++
			return ctx.EmitDefault(p)
		})
	})
	var mu sync.Mutex
	seen := make(map[int64]int)
	var count uint64
	job.SetProcessor("sink", func(int) core.Processor {
		return core.ProcessorFunc(func(ctx *core.OpContext, p *packet.Packet) error {
			v, err := p.Int64("i")
			if err != nil {
				return err
			}
			mu.Lock()
			seen[v]++
			count++
			mu.Unlock()
			return nil
		})
	})
	inj := chaos.New(97)
	bridger := core.NewResilientTCPBridger(transport.ResilientOptions{
		BackoffBase: time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		AckTimeout:  250 * time.Millisecond,
		Dialer:      inj.Dial,
	})
	place := func(op string, _ int) int {
		if op == "sink" {
			return 1
		}
		return 0
	}
	if err := job.LaunchOn([]*core.Engine{eA, eB}, place, bridger); err != nil {
		return chaosResult{}, err
	}
	st := &chaosState{
		progress: func() uint64 {
			mu.Lock()
			defer mu.Unlock()
			return count
		},
		job: job,
	}
	fault(inj, st)
	if !job.WaitSources(60 * time.Second) {
		job.Stop(time.Second)
		return chaosResult{}, fmt.Errorf("source never finished (link wedged)")
	}
	if err := job.Stop(60 * time.Second); err != nil {
		return chaosResult{}, err
	}
	var r chaosResult
	mu.Lock()
	for i := 0; i < n; i++ {
		c := seen[int64(i)]
		switch {
		case c == 0:
			r.lost++
		case c > 1:
			r.duplicated += uint64(c - 1)
		}
		r.delivered += uint64(c)
	}
	mu.Unlock()
	for _, h := range job.LinkHealth() {
		r.reconnects += h.Reconnects
		r.redelivered += h.Redelivered
	}
	return r, nil
}
