package experiments

import (
	"fmt"
	"runtime"
	rtmetrics "runtime/metrics"
	"time"
)

// ObjectReuse regenerates the §III-B3 result: the share of processing
// time the runtime spends on garbage collection with and without object
// reuse (packet/buffer pooling), on the same relay setup as Table I. The
// paper reports the JVM's GC share dropping from 8.63% to 0.79%; here the
// collector is Go's, so the comparable signals are the windowed GC CPU
// share (from runtime/metrics), the bytes allocated per processed packet,
// and the number of collection cycles during the run.
func ObjectReuse(opts Options) (*Table, error) {
	opts.defaults()
	t := &Table{
		ID:    "objreuse",
		Title: "Garbage-collector load with and without object reuse",
		Columns: []string{
			"mode", "alloc B/pkt", "GC cycles", "GC CPU %", "pool hit rate", "packets/s",
		},
	}
	var withPct, withoutPct float64
	var withAlloc, withoutAlloc float64
	for _, pooled := range []bool{true, false} {
		// Settle the collector between modes so cycles attribute cleanly.
		runtime.GC()
		gcBefore := gcCPUSeconds()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		res, err := RunRelay(RelayConfig{
			MsgBytes:    50,
			BufferBytes: 1 << 20,
			Batching:    true,
			Pooling:     pooled,
			Duration:    opts.EngineRunTime * 3,
		})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		gcSeconds := gcCPUSeconds() - gcBefore

		allocPerPkt := 0.0
		if res.Received > 0 {
			allocPerPkt = float64(after.TotalAlloc-before.TotalAlloc) / float64(res.Received)
		}
		cycles := after.NumGC - before.NumGC
		// GC CPU share of the total CPU available during the window.
		totalCPU := elapsed.Seconds() * float64(runtime.GOMAXPROCS(0))
		gcPct := 0.0
		if totalCPU > 0 && gcSeconds > 0 {
			gcPct = gcSeconds / totalCPU * 100
		}
		mode := "With object reuse"
		if !pooled {
			mode = "Without object reuse"
		}
		t.AddRow(mode,
			fmt.Sprintf("%.1f", allocPerPkt),
			fmt.Sprintf("%d", cycles),
			fmt.Sprintf("%.2f", gcPct),
			fmt.Sprintf("%.2f", res.PoolHitRate),
			fmt.Sprintf("%.0f", res.Throughput),
		)
		if pooled {
			withPct, withAlloc = gcPct, allocPerPkt
		} else {
			withoutPct, withoutAlloc = gcPct, allocPerPkt
		}
	}
	t.AddNote("paper: GC share fell from 8.63%% to 0.79%% with reuse; here: %.2f%% -> %.2f%%, alloc/pkt %.1fB -> %.1fB",
		withoutPct, withPct, withoutAlloc, withAlloc)
	return t, nil
}

// gcCPUSeconds reads the cumulative CPU seconds spent in the garbage
// collector from runtime/metrics.
func gcCPUSeconds() float64 {
	samples := []rtmetrics.Sample{{Name: "/cpu/classes/gc/total:cpu-seconds"}}
	rtmetrics.Read(samples)
	if samples[0].Value.Kind() != rtmetrics.KindFloat64 {
		return 0
	}
	return samples[0].Value.Float64()
}
