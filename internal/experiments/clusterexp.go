package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/stats"
)

// clusterHorizon is the virtual measurement window for the testbed model.
const clusterHorizon = 60 * time.Second

// cumulative sums the throughput and bandwidth across all jobs.
func cumulative(res []cluster.Result) (tput, goodput, wire float64) {
	for _, r := range res {
		tput += r.Throughput
		goodput += r.GoodputBits
		wire += r.WireBits
	}
	return
}

// Fig5 regenerates Figure 5: cumulative throughput and bandwidth of a
// 50-node cluster versus the number of concurrent two-stage all-pairs
// jobs. The curve rises while the cluster is adequately provisioned,
// peaks near 50 jobs, and declines in the overprovisioned regime.
func Fig5() (*Table, error) {
	const nodes = 50
	t := &Table{
		ID:      "fig5",
		Title:   "Cumulative throughput/bandwidth vs. concurrent jobs (50 nodes, model)",
		Columns: []string{"jobs", "cum tput", "cum goodput", "cum wire bw"},
	}
	var peakJobs int
	var peak float64
	for _, jobs := range []int{1, 5, 10, 20, 30, 40, 50, 60, 70, 85, 100} {
		c := cluster.New(nodes)
		specs := make([]cluster.JobSpec, jobs)
		for i := range specs {
			specs[i] = cluster.AllPairsJob(cluster.Neptune, nodes, 128, 1<<20)
		}
		res, _, err := c.Solve(specs, clusterHorizon)
		if err != nil {
			return nil, err
		}
		tput, good, wire := cumulative(res)
		if tput > peak {
			peak, peakJobs = tput, jobs
		}
		t.AddRow(fmt.Sprintf("%d", jobs),
			metrics.FormatRate(tput),
			metrics.FormatBits(good),
			metrics.FormatBits(wire),
		)
	}
	t.AddNote("peak at %d jobs (paper: both metrics increase until #jobs = 50, then drop in the overprovisioned regime)", peakJobs)
	return t, nil
}

// Fig6 regenerates Figure 6: cumulative throughput and bandwidth with 50
// concurrent jobs versus cluster size — near-linear scaling that levels
// off once per-job offered load is satisfied.
func Fig6() (*Table, error) {
	t := &Table{
		ID:      "fig6",
		Title:   "Cumulative throughput/bandwidth vs. cluster size (50 jobs, model)",
		Columns: []string{"nodes", "cum tput", "cum goodput", "cum wire bw"},
	}
	for _, nodes := range []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50} {
		c := cluster.New(nodes)
		specs := make([]cluster.JobSpec, 50)
		for i := range specs {
			specs[i] = cluster.AllPairsJob(cluster.Neptune, nodes, 128, 1<<20)
		}
		res, _, err := c.Solve(specs, clusterHorizon)
		if err != nil {
			return nil, err
		}
		tput, good, wire := cumulative(res)
		t.AddRow(fmt.Sprintf("%d", nodes),
			metrics.FormatRate(tput),
			metrics.FormatBits(good),
			metrics.FormatBits(wire),
		)
	}
	t.AddNote("paper: both metrics scale linearly with cluster size and are expected to stabilize once the cluster exceeds the offered load")
	return t, nil
}

// Fig7 regenerates Figure 7: throughput, end-to-end latency, and
// bandwidth versus message size for NEPTUNE and Storm on the 3-stage
// relay (testbed model). Storm's latency blows up with message size
// because the relay bolt falls behind the spout and nothing throttles it.
func Fig7() (*Table, error) {
	t := &Table{
		ID:    "fig7",
		Title: "NEPTUNE vs. Storm on the 3-stage relay (model)",
		Columns: []string{
			"msg", "engine", "tput", "p99 latency", "wire bw", "bottleneck",
		},
	}
	var nepSmall, stormSmall float64
	for _, msg := range []int{50, 100, 200, 400, 1024, 10240} {
		for _, eng := range []cluster.EngineKind{cluster.Neptune, cluster.Storm} {
			c := cluster.New(2)
			res, _, err := c.Solve([]cluster.JobSpec{
				cluster.RelayJob(eng, msg, 1<<20, 0, 1),
			}, clusterHorizon)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%dB", msg),
				eng.String(),
				metrics.FormatRate(res[0].Throughput),
				res[0].P99Latency.Round(100*time.Microsecond).String(),
				metrics.FormatBits(res[0].WireBits),
				res[0].Bottleneck,
			)
			if msg == 50 {
				if eng == cluster.Neptune {
					nepSmall = res[0].Throughput
				} else {
					stormSmall = res[0].Throughput
				}
			}
		}
	}
	if stormSmall > 0 {
		t.AddNote("at 50 B messages NEPTUNE outperforms Storm %.0fx on throughput (paper: NEPTUNE wins all three metrics; Storm latency grows drastically with message size)", nepSmall/stormSmall)
	}
	return t, nil
}

// Fig9 regenerates Figure 9: cumulative throughput of the manufacturing
// equipment monitoring job versus concurrent jobs, NEPTUNE vs. Storm,
// on the 50-node testbed model.
func Fig9() (*Table, error) {
	const nodes = 50
	t := &Table{
		ID:      "fig9",
		Title:   "Manufacturing monitoring: cumulative throughput vs. jobs (model)",
		Columns: []string{"jobs", "neptune", "storm", "ratio"},
	}
	var ratio32 float64
	for _, jobs := range []int{1, 4, 8, 16, 24, 32, 40, 50} {
		var cums [2]float64
		for ei, eng := range []cluster.EngineKind{cluster.Neptune, cluster.Storm} {
			c := cluster.New(nodes)
			specs := make([]cluster.JobSpec, jobs)
			for i := range specs {
				specs[i] = cluster.ManufacturingJob(eng, nodes, i)
			}
			res, _, err := c.Solve(specs, clusterHorizon)
			if err != nil {
				return nil, err
			}
			cums[ei], _, _ = cumulative(res)
		}
		ratio := cums[0] / cums[1]
		if jobs == 32 {
			ratio32 = ratio
		}
		t.AddRow(fmt.Sprintf("%d", jobs),
			metrics.FormatRate(cums[0]),
			metrics.FormatRate(cums[1]),
			fmt.Sprintf("%.1fx", ratio),
		)
	}
	t.AddNote("at 32 jobs NEPTUNE/Storm = %.1fx (paper: 8x); both systems scale linearly with job count", ratio32)
	return t, nil
}

// Fig10 regenerates Figure 10: cluster-wide CPU and memory consumption of
// NEPTUNE vs. Storm with 50 jobs on 50 nodes, including the paper's
// statistical tests (one-tailed t-test on CPU, two-tailed on memory).
func Fig10() (*Table, error) {
	const nodes = 50
	t := &Table{
		ID:      "fig10",
		Title:   "Cluster-wide resource consumption, 50 jobs on 50 nodes (model)",
		Columns: []string{"engine", "mean CPU (cores/8)", "sd", "mean mem %", "sd"},
	}
	samples := map[cluster.EngineKind][2][]float64{}
	for _, eng := range []cluster.EngineKind{cluster.Neptune, cluster.Storm} {
		c := cluster.New(nodes)
		specs := make([]cluster.JobSpec, nodes)
		for i := range specs {
			specs[i] = cluster.ManufacturingJob(eng, nodes, i)
		}
		_, st, err := c.Solve(specs, clusterHorizon)
		if err != nil {
			return nil, err
		}
		// Per-node samples with measurement noise, as a real /proc
		// scrape would show.
		cpu := cluster.NoisySamples(st.CPUUsed, 0.06, 100+int64(eng))
		memPct := make([]float64, nodes)
		for n := 0; n < nodes; n++ {
			memPct[n] = st.MemUsedMB[n] / (12 * 1024) * 100
		}
		memPct = cluster.NoisySamples(memPct, 0.05, 200+int64(eng))
		samples[eng] = [2][]float64{cpu, memPct}
		var rc, rm stats.Running
		rc.AddAll(cpu)
		rm.AddAll(memPct)
		t.AddRow(eng.String(),
			fmt.Sprintf("%.2f", rc.Mean()),
			fmt.Sprintf("%.2f", rc.StdDev()),
			fmt.Sprintf("%.1f", rm.Mean()),
			fmt.Sprintf("%.1f", rm.StdDev()),
		)
	}
	cpuT, err := stats.WelchTTest(samples[cluster.Neptune][0], samples[cluster.Storm][0])
	if err != nil {
		return nil, err
	}
	memT, err := stats.WelchTTest(samples[cluster.Neptune][1], samples[cluster.Storm][1])
	if err != nil {
		return nil, err
	}
	t.AddNote("CPU one-tailed t-test (NEPTUNE < Storm): p = %.6f (paper: p < 0.0001)", cpuT.POneTailed)
	t.AddNote("memory two-tailed t-test: p = %.4f (paper: p = 0.0863, no noticeable difference)", memT.PTwoTailed)
	return t, nil
}

// Headline regenerates the §VI summary numbers: single-node relay
// throughput, 50-node cumulative relay throughput, p99 latency for 10 KB
// packets, and the manufacturing application's cumulative throughput.
func Headline() (*Table, error) {
	t := &Table{
		ID:      "headline",
		Title:   "Headline numbers (model)",
		Columns: []string{"result", "paper", "reproduced"},
	}
	// Single relay.
	c := cluster.New(2)
	res, _, err := c.Solve([]cluster.JobSpec{cluster.RelayJob(cluster.Neptune, 50, 1<<20, 0, 1)}, clusterHorizon)
	if err != nil {
		return nil, err
	}
	t.AddRow("single-node relay throughput", "~2 M pkts/s", metrics.FormatRate(res[0].Throughput))

	// 50-node relay fleet: one relay job per node pair, 50 jobs.
	c = cluster.New(50)
	specs := make([]cluster.JobSpec, 50)
	for i := range specs {
		specs[i] = cluster.RelayJob(cluster.Neptune, 50, 1<<20, i, (i+1)%50)
	}
	resAll, _, err := c.Solve(specs, clusterHorizon)
	if err != nil {
		return nil, err
	}
	cum, _, _ := cumulative(resAll)
	t.AddRow("50-node cumulative relay throughput (source pkts)", "~100 M pkts/s", metrics.FormatRate(cum))
	// Each relay job moves every packet over two network hops; counted
	// as cluster-wide message deliveries (the rate a per-stage counter
	// sums to), the figure doubles.
	t.AddRow("50-node cumulative deliveries (2 hops/pkt)", "~100 M msgs/s", metrics.FormatRate(2*cum))

	// p99 latency at 10 KB.
	c = cluster.New(2)
	res, _, err = c.Solve([]cluster.JobSpec{cluster.RelayJob(cluster.Neptune, 10240, 1<<20, 0, 1)}, clusterHorizon)
	if err != nil {
		return nil, err
	}
	t.AddRow("p99 latency, 10 KB packets", "< 87.8 ms", res[0].P99Latency.Round(100*time.Microsecond).String())

	// Manufacturing cumulative throughput at 50 jobs.
	c = cluster.New(50)
	mspecs := make([]cluster.JobSpec, 50)
	for i := range mspecs {
		mspecs[i] = cluster.ManufacturingJob(cluster.Neptune, 50, i)
	}
	mres, _, err := c.Solve(mspecs, clusterHorizon)
	if err != nil {
		return nil, err
	}
	mcum, _, _ := cumulative(mres)
	t.AddRow("manufacturing app cumulative throughput", "15 M msgs/s", metrics.FormatRate(mcum))
	return t, nil
}

// Ablation sweeps the power set of {buffering, batching, pooling} on the
// real engine, quantifying each optimization's contribution — the design
// points DESIGN.md calls out.
func Ablation(opts Options) (*Table, error) {
	opts.defaults()
	t := &Table{
		ID:      "ablation",
		Title:   "Ablation of buffering / batching / pooling (real engine)",
		Columns: []string{"buffering", "batching", "pooling", "tput", "p99 latency", "switches/s"},
	}
	for _, buffering := range []bool{true, false} {
		for _, batching := range []bool{true, false} {
			for _, pooling := range []bool{true, false} {
				bufBytes := 1 << 20
				if !buffering {
					bufBytes = 1 // flush every packet
				}
				res, err := RunRelay(RelayConfig{
					MsgBytes:    50,
					BufferBytes: bufBytes,
					Batching:    batching,
					Pooling:     pooling,
					Duration:    opts.EngineRunTime,
				})
				if err != nil {
					return nil, err
				}
				t.AddRow(
					onoff(buffering), onoff(batching), onoff(pooling),
					metrics.FormatRate(res.Throughput),
					res.P99Latency.Round(10*time.Microsecond).String(),
					fmt.Sprintf("%.0f", float64(res.Switches)/res.Elapsed.Seconds()),
				)
			}
		}
	}
	t.AddNote("all three on is the paper's default; buffering off forces a flush per packet; batching off schedules one packet per execution")
	return t, nil
}

func onoff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
