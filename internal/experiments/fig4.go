package experiments

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Fig4 regenerates Figure 4: backpressure in action. The three-stage
// graph's final stage (stage C) sleeps after each packet; the sleep
// interval cycles 0 → 1 → 2 → 3 ms in steps. With backpressure the
// source's emission rate must track the inverse of the sink's sleep
// interval — and no packets may be dropped while it does.
func Fig4(opts Options) (*Table, error) {
	opts.defaults()
	phase := opts.EngineRunTime * 2
	if phase < 200*time.Millisecond {
		phase = 200 * time.Millisecond
	}
	sleeps := []int64{0, 1, 2, 3, 2, 1, 0}

	var delay atomic.Int64
	type sample struct {
		at      time.Duration
		sleepMs int64
		rate    float64
	}
	var mu sync.Mutex
	var samples []sample
	var lastCount uint64
	var lastAt time.Duration

	// Drive the phase schedule from the sampling callback.
	phaseFor := func(elapsed time.Duration) int64 {
		idx := int(elapsed / phase)
		if idx >= len(sleeps) {
			idx = len(sleeps) - 1
		}
		return sleeps[idx]
	}

	res, err := RunRelay(RelayConfig{
		MsgBytes:    100,
		BufferBytes: 16 << 10, // small buffers keep the control loop tight
		Batching:    true,
		Pooling:     true,
		Duration:    phase * time.Duration(len(sleeps)),
		SinkDelayNs: &delay,
		SampleEvery: phase / 4,
		OnSample: func(elapsed time.Duration, received uint64) {
			delay.Store(phaseFor(elapsed) * int64(time.Millisecond))
			mu.Lock()
			dt := (elapsed - lastAt).Seconds()
			if dt > 0 {
				samples = append(samples, sample{
					at:      elapsed,
					sleepMs: phaseFor(elapsed),
					rate:    float64(received-lastCount) / dt,
				})
			}
			lastCount, lastAt = received, elapsed
			mu.Unlock()
		},
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "fig4",
		Title:   "Backpressure: source throughput tracks the sink's processing rate",
		Columns: []string{"t", "sink sleep", "source rate"},
	}
	mu.Lock()
	defer mu.Unlock()
	// Aggregate samples per sleep phase for the shape assertion.
	rateBySleep := map[int64][]float64{}
	for _, s := range samples {
		t.AddRow(
			s.at.Round(10*time.Millisecond).String(),
			fmt.Sprintf("%d ms", s.sleepMs),
			metrics.FormatRate(s.rate),
		)
		rateBySleep[s.sleepMs] = append(rateBySleep[s.sleepMs], s.rate)
	}
	mean := func(xs []float64) float64 {
		if len(xs) == 0 {
			return 0
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		return sum / float64(len(xs))
	}
	r0, r3 := mean(rateBySleep[0]), mean(rateBySleep[3])
	t.AddNote("mean source rate at 0 ms sleep: %s; at 3 ms sleep: %s — throughput inversely tracks the sink's delay, no packets dropped (%d delivered)",
		metrics.FormatRate(r0), metrics.FormatRate(r3), res.Received)
	if r3 > 0 {
		t.AddNote("throttle ratio r(0ms)/r(3ms) = %.1fx", r0/r3)
	}
	return t, nil
}
