package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/compression"
	"repro/internal/debs"
	"repro/internal/stats"
)

// Compression regenerates the §III-B5 study: the impact of entropy-gated
// compression on a stream processing job, on two datasets — the
// manufacturing-equipment sensor stream (low entropy between consecutive
// readings) and a random stream of the same record size (high entropy).
// Per dataset, three configurations run: compression off, always-on, and
// NEPTUNE's selective (entropy-gated) mode; the throughput samples are
// compared with Tukey's HSD procedure exactly as the paper does.
func Compression(opts Options) (*Table, error) {
	opts.defaults()
	t := &Table{
		ID:    "compression",
		Title: "Entropy-gated compression on sensor vs. random data",
		Columns: []string{
			"dataset", "mode", "tput mean", "tput sd", "wire B/pkt", "1Gbps-proj tput", "compressed frac",
		},
	}

	type cell struct {
		dataset string
		mode    string
		thresh  float64
	}
	cells := []cell{
		{"sensor", "off", 0},
		{"sensor", "always", 8},
		{"sensor", "selective", 6.5},
		{"random", "off", 0},
		{"random", "always", 8},
		{"random", "selective", 6.5},
	}

	groupsByDataset := map[string][]stats.Group{}
	for _, c := range cells {
		payload := sensorPayload()
		if c.dataset == "random" {
			payload = randomPayload()
		}
		var samples []float64
		var wirePerPkt float64
		for trial := 0; trial < opts.Trials; trial++ {
			res, err := RunRelay(RelayConfig{
				MsgBytes:             debs.RecordSize,
				BufferBytes:          64 << 10,
				Batching:             true,
				Pooling:              true,
				CompressionThreshold: c.thresh,
				Duration:             opts.EngineRunTime,
				Payload:              payload,
			})
			if err != nil {
				return nil, err
			}
			samples = append(samples, res.Throughput)
			if res.Received > 0 {
				wirePerPkt = float64(res.BytesOut) / float64(res.Received)
			}
		}
		s, err := stats.Summarize(samples)
		if err != nil {
			return nil, err
		}
		// Projection onto the paper's 1 Gbps network: the job would run
		// at the smaller of its CPU rate (measured here) and the link's
		// packet rate at this mode's wire size. On the real cluster this
		// is where compression pays: low-entropy data shrinks 15x, so
		// the link ceiling rises 15x.
		projected := s.Mean
		if wirePerPkt > 0 {
			if linkRate := 125e6 / wirePerPkt; linkRate < projected {
				projected = linkRate
			}
		}
		t.AddRow(c.dataset, c.mode,
			fmt.Sprintf("%.0f", s.Mean),
			fmt.Sprintf("%.0f", s.StdDev),
			fmt.Sprintf("%.1f", wirePerPkt),
			fmt.Sprintf("%.0f", projected),
			compressionFraction(c.dataset, c.thresh),
		)
		groupsByDataset[c.dataset] = append(groupsByDataset[c.dataset], stats.Group{
			Name: c.mode, Values: samples,
		})
	}

	// Tukey HSD per dataset, as in the paper.
	for _, ds := range []string{"sensor", "random"} {
		cmp, err := stats.TukeyHSD(groupsByDataset[ds], 0.05)
		if err != nil {
			return nil, err
		}
		for _, pc := range cmp {
			verdict := "not significant"
			if pc.Significant {
				verdict = "SIGNIFICANT"
			}
			t.AddNote("%s: %s vs %s — diff %.0f pkt/s, p = %.4f (%s)",
				ds, pc.A, pc.B, pc.MeanDiff, pc.P, verdict)
		}
	}
	t.AddNote("paper: compressing random data is clearly worse (p < 0.0001); for the sensor dataset no significant effect (p > 0.1561)")
	t.AddNote("the reproducible core of the paper's result is the wire-size contrast: sensor batches shrink ~15x, random batches not at all — so the gate must be per stream. In-process the transport runs at memory speed, so compression's bandwidth benefit cannot materialize and its CPU cost is visible on both datasets; on the paper's 1 Gbps network (projection column) the sensor stream's codec cost is repaid by the higher link ceiling")
	return t, nil
}

// SensorPayload returns a payload generator streaming consecutive
// manufacturing readings (low entropy between neighbors).
func SensorPayload() func(i uint64, buf []byte) []byte {
	g := debs.NewGenerator(11)
	return func(_ uint64, buf []byte) []byte {
		return debs.AppendRecord(buf[:0], g.Next())
	}
}

// RandomPayload returns a payload generator streaming random records of
// the same size (high entropy).
func RandomPayload() func(i uint64, buf []byte) []byte {
	rng := rand.New(rand.NewSource(12))
	return func(_ uint64, buf []byte) []byte {
		return debs.AppendRandomRecord(buf[:0], rng)
	}
}

// sensorPayload and randomPayload are the internal aliases.
func sensorPayload() func(i uint64, buf []byte) []byte { return SensorPayload() }
func randomPayload() func(i uint64, buf []byte) []byte { return RandomPayload() }

// compressionFraction reports what share of representative frames the
// entropy gate would compress for the dataset at the given threshold.
func compressionFraction(dataset string, thresh float64) string {
	if thresh <= 0 {
		return "0.00"
	}
	sel := &compression.Selective{Threshold: thresh, MinSize: 1}
	gen := sensorPayload()
	if dataset == "random" {
		gen = randomPayload()
	}
	// Entropy is evaluated at batch granularity in the engine; sample
	// frames of ~32 records.
	buf := make([]byte, 0, 32*debs.RecordSize)
	rec := make([]byte, 0, debs.RecordSize)
	compressed := 0
	const frames = 20
	for f := 0; f < frames; f++ {
		buf = buf[:0]
		for r := 0; r < 32; r++ {
			rec = gen(0, rec)
			buf = append(buf, rec...)
		}
		frame := sel.Encode(nil, buf)
		if len(frame) > 0 && compression.Mode(frame[0]) == compression.ModeCompressed {
			compressed++
		}
	}
	return fmt.Sprintf("%.2f", float64(compressed)/frames)
}
