package experiments

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/packet"
	"repro/internal/transport"
	"repro/internal/window"
)

// Recovery measures crash recovery of a stateful pipeline — the failure
// mode the paper's evaluation assumes away entirely (NEPTUNE runs on a
// healthy cluster; see DESIGN.md §8.1). A three-stage job (source →
// sliding-window operator → sink) spans three engines over resilient TCP
// links; a seeded chaos injector kills the mid-pipeline engine while the
// stream is in flight. With checkpointing and upstream replay the sink
// must still see every packet exactly once carrying the deterministic
// windowed state; with restart-only supervision the same kill demonstrably
// loses both data and operator state.
func Recovery(opts Options) (*Table, error) {
	opts.defaults()
	t := &Table{
		ID:    "recovery",
		Title: "Crash recovery of a stateful pipeline (checkpoint + upstream replay)",
		Columns: []string{
			"scenario", "sent", "delivered", "lost", "duplicated",
			"state errors", "restarts", "replayed pkts", "ckpt bytes",
		},
	}
	const n = 20_000
	scenarios := []struct {
		name       string
		kill       bool
		checkpoint bool
	}{
		{"no failure (baseline)", false, true},
		{"mid-pipeline kill, checkpoint + replay", true, true},
		{"mid-pipeline kill, restart only", true, false},
	}
	for _, sc := range scenarios {
		r, err := runRecoveryScenario(n, sc.kill, sc.checkpoint)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.name, err)
		}
		t.AddRow(sc.name,
			fmt.Sprint(n), fmt.Sprint(r.delivered),
			fmt.Sprint(r.lost), fmt.Sprint(r.duplicated),
			fmt.Sprint(r.stateErrors),
			fmt.Sprint(r.health.Restarts), fmt.Sprint(r.health.ReplayedPackets),
			fmt.Sprint(r.health.CheckpointBytes))
	}
	t.AddNote("The kill destroys the middle engine's process state: window " +
		"contents, receive/dedup cursors, and emit cursors. Recovery revives " +
		"the resource, restores the newest checkpoint epoch, rebuilds links " +
		"under a bumped recovery epoch, and replays retained upstream frames.")
	t.AddNote("\"state errors\" counts sink packets whose windowed sum or " +
		"input cursor differs from the deterministic expectation — lost " +
		"operator state, even when the packet itself arrived.")
	t.AddNote("The restart-only row is the control: without checkpoints and " +
		"replay the revived operator restarts empty and the sink's link-dedup " +
		"cursor swallows its re-emitted sequence numbers — lost > 0 by design.")
	return t, nil
}

type recoveryResult struct {
	delivered   uint64
	lost        uint64
	duplicated  uint64
	stateErrors uint64
	health      core.RecoveryHealth
}

// recoveryWindowOp is the stateful middle stage: a sliding window plus an
// input cursor, snapshot/restored through the checkpoint supervisor.
type recoveryWindowOp struct {
	win  *window.SlidingCount
	seen int64
}

const recoveryWindowSize = 16

func (m *recoveryWindowOp) Open(*core.OpContext) error { return nil }
func (m *recoveryWindowOp) Close() error               { return nil }

func (m *recoveryWindowOp) Process(ctx *core.OpContext, p *packet.Packet) error {
	v, err := p.Int64("i")
	if err != nil {
		return err
	}
	m.win.Add(float64(v))
	m.seen++
	out := ctx.NewPacket()
	out.AddInt64("i", v)
	out.AddInt64("seen", m.seen)
	out.AddFloat64("sum", m.win.Sum())
	return ctx.EmitDefault(out)
}

func (m *recoveryWindowOp) SnapshotState(*core.OpContext) ([]byte, error) {
	blob, err := m.win.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return append(binary.AppendVarint(nil, m.seen), blob...), nil
}

func (m *recoveryWindowOp) RestoreState(_ *core.OpContext, state []byte) error {
	seen, nn := binary.Varint(state)
	if nn <= 0 {
		return errors.New("recovery experiment: bad window op state")
	}
	m.seen = seen
	return m.win.UnmarshalBinary(state[nn:])
}

func expectedRecoverySum(i int64) float64 {
	lo := i - recoveryWindowSize + 1
	if lo < 0 {
		lo = 0
	}
	var sum float64
	for k := lo; k <= i; k++ {
		sum += float64(k)
	}
	return sum
}

func runRecoveryScenario(n int, kill, checkpoint bool) (recoveryResult, error) {
	cfg := core.DefaultConfig()
	cfg.BufferSize = 4 << 10
	cfg.FlushInterval = time.Millisecond
	cfg.DedupRemote = true
	names := [3]string{"rcv-src", "rcv-mid", "rcv-sink"}
	var engines []*core.Engine
	for _, name := range names {
		e, err := core.NewEngine(name, cfg)
		if err != nil {
			return recoveryResult{}, err
		}
		engines = append(engines, e)
	}
	spec := &graph.Spec{
		Name: "recovery",
		Operators: []graph.OperatorSpec{
			{Name: "src", Kind: graph.KindSource},
			{Name: "mid", Kind: graph.KindProcessor},
			{Name: "sink", Kind: graph.KindProcessor},
		},
		Links: []graph.LinkSpec{
			{From: "src", To: "mid"},
			{From: "mid", To: "sink"},
		},
	}
	spec.Normalize()
	job, err := core.NewJob(spec, cfg)
	if err != nil {
		return recoveryResult{}, err
	}
	var emitted int
	job.SetSource("src", func(int) core.Source {
		return core.SourceFunc(func(ctx *core.OpContext) error {
			if emitted >= n {
				return io.EOF
			}
			if emitted%500 == 499 {
				// Pace the source so the kill lands mid-stream.
				time.Sleep(time.Millisecond)
			}
			p := ctx.NewPacket()
			p.AddInt64("i", int64(emitted))
			emitted++
			return ctx.EmitDefault(p)
		})
	})
	job.SetProcessor("mid", func(int) core.Processor {
		w, werr := window.NewSlidingCount(recoveryWindowSize)
		if werr != nil {
			panic(werr)
		}
		return &recoveryWindowOp{win: w}
	})
	var mu sync.Mutex
	seen := make(map[int64]int)
	var count, stateErrs uint64
	job.SetProcessor("sink", func(int) core.Processor {
		return core.ProcessorFunc(func(ctx *core.OpContext, p *packet.Packet) error {
			v, err := p.Int64("i")
			if err != nil {
				return err
			}
			sn, err := p.Int64("seen")
			if err != nil {
				return err
			}
			sum, err := p.Float64("sum")
			if err != nil {
				return err
			}
			mu.Lock()
			seen[v]++
			count++
			if sn != v+1 || sum != expectedRecoverySum(v) {
				stateErrs++
			}
			mu.Unlock()
			return nil
		})
	})
	bridger := core.NewResilientTCPBridger(transport.ResilientOptions{
		BackoffBase: time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
	})
	place := func(op string, _ int) int {
		switch op {
		case "src":
			return 0
		case "mid":
			return 1
		default:
			return 2
		}
	}
	if err := job.LaunchOn(engines, place, bridger); err != nil {
		return recoveryResult{}, err
	}
	sup, err := job.Supervise(core.SupervisorOptions{
		Heartbeat: 5 * time.Millisecond,
		Misses:    3,
		Replay:    checkpoint,
	})
	if err != nil {
		job.Stop(time.Second)
		return recoveryResult{}, err
	}
	progress := func() uint64 {
		mu.Lock()
		defer mu.Unlock()
		return count
	}
	if kill {
		waitUntil(func() bool { return progress() >= uint64(n)/4 })
		if checkpoint {
			if err := sup.Checkpoint(); err != nil {
				job.Stop(time.Second)
				return recoveryResult{}, err
			}
		}
		inj := chaos.New(97)
		inj.RegisterKill(names[1], func() { _ = sup.Kill(names[1]) })
		inj.KillResource(names[1])
		waitUntil(func() bool { return job.RecoveryHealth().Restarts >= 1 })
	}
	if !job.WaitSources(60 * time.Second) {
		job.Stop(time.Second)
		return recoveryResult{}, fmt.Errorf("source never finished (pipeline wedged)")
	}
	health := job.RecoveryHealth()
	if err := job.Stop(60 * time.Second); err != nil && checkpoint {
		// The restart-only run loses data by design; its drain cannot
		// balance, so only the recovering runs treat Stop errors as fatal.
		return recoveryResult{}, err
	}
	r := recoveryResult{health: health}
	mu.Lock()
	r.stateErrors = stateErrs
	for i := 0; i < n; i++ {
		c := seen[int64(i)]
		switch {
		case c == 0:
			r.lost++
		case c > 1:
			r.duplicated += uint64(c - 1)
		}
		r.delivered += uint64(c)
	}
	mu.Unlock()
	return r, nil
}
