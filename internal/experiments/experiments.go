// Package experiments regenerates every table and figure of the paper's
// evaluation section. Each experiment returns a Table whose rows mirror
// what the paper plots; cmd/neptune-bench renders them and EXPERIMENTS.md
// records paper-vs-measured values.
//
// Two kinds of experiments coexist:
//
//   - Engine experiments (Fig. 2 measured columns, Table I, the object
//     reuse result, Fig. 4, the compression study) drive the real
//     in-process engine and measure it.
//   - Cluster experiments (Figs. 5, 6, 7, 9, 10 and the headline cluster
//     numbers) use the internal/cluster testbed model, since the paper's
//     50-node 1 Gbps cluster is not available (see DESIGN.md §3).
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/packet"
)

// Table is one experiment's output: a header and data rows, renderable as
// an aligned text table.
type Table struct {
	// ID is the paper artifact this regenerates ("fig2", "table1", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Columns are the header names.
	Columns []string
	// Rows hold formatted cells (len == len(Columns)).
	Rows [][]string
	// Notes carry interpretation (significance decisions, bottlenecks).
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends an interpretation note.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render prints the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n* %s\n", n)
	}
	return b.String()
}

// RelayConfig parameterizes one run of the real three-stage message relay
// (paper Fig. 1): sender and receiver on engine A, relay on engine B,
// connected in-process.
type RelayConfig struct {
	// MsgBytes is the payload size of each stream packet.
	MsgBytes int
	// BufferBytes is the application-level buffer capacity.
	BufferBytes int
	// FlushInterval is the buffer timer bound (0: engine default 10 ms).
	FlushInterval time.Duration
	// Batching and Pooling toggle the respective optimizations.
	Batching, Pooling bool
	// CompressionThreshold is the entropy gate (0 = off).
	CompressionThreshold float64
	// Duration is how long the source emits.
	Duration time.Duration
	// InLowWatermark/InHighWatermark override the inbound backpressure
	// watermarks (0: engine defaults). Small values keep the standing
	// queue — and hence the drain time — short when the sink is slow.
	InLowWatermark, InHighWatermark int64
	// OutLowWatermark/OutHighWatermark override the transport outbound
	// watermarks (0: engine defaults).
	OutLowWatermark, OutHighWatermark int64
	// Payload selects the payload generator: nil means a fixed
	// moderately-compressible pattern; otherwise called once per packet.
	Payload func(i uint64, buf []byte) []byte
	// SinkDelayNs, when non-nil, is read per packet at the receiver and
	// slept (the Fig. 3/4 variable-rate stage C).
	SinkDelayNs *atomic.Int64
	// Lanes shards each engine into per-core execution lanes
	// (core.Config.Lanes); 0 means one lane, the unsharded engine.
	Lanes int
	// Parallelism sets the relay/receiver operator instance count (0 =
	// 1). With Lanes > 1 the instances round-robin across lanes, which is
	// what lets the lane sweep scale past one core.
	Parallelism int
	// RateLimit, when positive, throttles the sender to that many
	// packets/second (core.Throttle) — an offered-load source, as IoT
	// gateways behave. Latency-target runs need it: a saturating source
	// keeps every bounded queue full, and no batching knob can tune away
	// standing-queue delay.
	RateLimit float64
	// LatencyTarget enables the adaptive QoS runtime with the given
	// end-to-end sojourn goal (core.Config.LatencyTarget); zero leaves
	// the job untargeted (static knobs, no controller).
	LatencyTarget time.Duration
	// QoSTick overrides the controller period (0: engine default).
	QoSTick time.Duration
	// RelayWorkNs busy-spins the relay processor per packet, simulating
	// domain-specific processing logic (the paper's non-communication
	// experiments use complex multi-stage jobs; without this, the
	// in-process engine is so fast that any added cost dominates).
	RelayWorkNs int64
	// OnSample, when non-nil, is invoked every SampleEvery with the
	// cumulative receiver count (for time-series experiments).
	OnSample    func(elapsed time.Duration, received uint64)
	SampleEvery time.Duration
}

// RelayResult is the measured outcome of one relay run.
type RelayResult struct {
	Received    uint64
	Elapsed     time.Duration
	Throughput  float64 // packets/s observed at the receiver
	MeanLatency time.Duration
	P50Latency  time.Duration
	P99Latency  time.Duration
	BytesOut    uint64 // frame bytes sent by engine A (sender side)
	BatchesOut  uint64
	Switches    uint64 // context-switch equivalents on engine B (relay)
	PoolHitRate float64
	AllocPerPkt float64 // heap allocations per received packet

	// QoS runtime outcome (zero when LatencyTarget was unset).
	QoSEscalations uint64 // tuning-level increases the controller applied
	QoSRelaxations uint64 // tuning-level decreases
	ChainedLinks   int    // links fused at the end of the run
	ChainDelivered uint64 // packets that rode a fused direct call
}

// relaySpec builds the Fig. 1 graph with par parallel relay/receiver
// instances (par <= 1 is the paper's single-instance pipeline).
func relaySpec(par int) *graph.Spec {
	if par < 1 {
		par = 1
	}
	s := &graph.Spec{
		Name: "relay",
		Operators: []graph.OperatorSpec{
			{Name: "sender", Kind: graph.KindSource},
			{Name: "relay", Kind: graph.KindProcessor, Parallelism: par},
			{Name: "receiver", Kind: graph.KindProcessor, Parallelism: par},
		},
		Links: []graph.LinkSpec{
			{From: "sender", To: "relay"},
			{From: "relay", To: "receiver"},
		},
	}
	s.Normalize()
	return s
}

// defaultPayload fills buf with a deterministic sensor-like pattern.
func defaultPayload(i uint64, buf []byte) []byte {
	for k := range buf {
		buf[k] = byte('a' + (int(i)+k/8)%20)
	}
	return buf
}

// RunRelay executes the relay for cfg.Duration and reports measurements.
func RunRelay(cfg RelayConfig) (RelayResult, error) {
	ecfg := core.DefaultConfig()
	ecfg.BufferSize = cfg.BufferBytes
	if cfg.FlushInterval > 0 {
		ecfg.FlushInterval = cfg.FlushInterval
	}
	ecfg.Batching = cfg.Batching
	ecfg.Pooling = cfg.Pooling
	ecfg.CompressionThreshold = cfg.CompressionThreshold
	if cfg.InHighWatermark > 0 {
		ecfg.InHighWatermark = cfg.InHighWatermark
		ecfg.InLowWatermark = cfg.InLowWatermark
	}
	if cfg.OutHighWatermark > 0 {
		ecfg.OutHighWatermark = cfg.OutHighWatermark
		ecfg.OutLowWatermark = cfg.OutLowWatermark
	}
	ecfg.Lanes = cfg.Lanes
	ecfg.LatencyTarget = cfg.LatencyTarget
	if cfg.QoSTick > 0 {
		ecfg.QoSTick = cfg.QoSTick
	}
	eA, err := core.NewEngine("A", ecfg)
	if err != nil {
		return RelayResult{}, err
	}
	eB, err := core.NewEngine("B", ecfg)
	if err != nil {
		return RelayResult{}, err
	}

	payloadFn := cfg.Payload
	if payloadFn == nil {
		payloadFn = defaultPayload
	}
	var emitted atomic.Uint64
	var received atomic.Uint64
	stop := atomic.Bool{}

	job, err := core.NewJob(relaySpec(cfg.Parallelism), ecfg)
	if err != nil {
		return RelayResult{}, err
	}
	job.SetSource("sender", func(int) core.Source {
		buf := make([]byte, cfg.MsgBytes)
		var src core.Source = core.SourceFunc(func(ctx *core.OpContext) error {
			if stop.Load() {
				return io.EOF
			}
			p := ctx.NewPacket()
			i := emitted.Add(1)
			p.AddBytes("payload", payloadFn(i, buf))
			return ctx.EmitDefault(p)
		})
		if cfg.RateLimit > 0 {
			// Burst sized to ~10 ms of tokens: the throttle sleeps one
			// burst at a time, so a fixed small burst would cap the
			// effective rate at burst-per-OS-timer-tick.
			src = core.Throttle(cfg.RateLimit, int(cfg.RateLimit/100)+64, src)
		}
		return src
	})
	job.SetProcessor("relay", func(int) core.Processor {
		return core.ProcessorFunc(func(ctx *core.OpContext, p *packet.Packet) error {
			if cfg.RelayWorkNs > 0 {
				spin(cfg.RelayWorkNs)
			}
			return ctx.EmitDefault(p)
		})
	})
	job.SetProcessor("receiver", func(int) core.Processor {
		return core.ProcessorFunc(func(ctx *core.OpContext, p *packet.Packet) error {
			received.Add(1)
			if cfg.SinkDelayNs != nil {
				if d := cfg.SinkDelayNs.Load(); d > 0 {
					time.Sleep(time.Duration(d))
				}
			}
			return nil
		})
	})
	place := func(op string, _ int) int {
		if op == "relay" {
			return 1
		}
		return 0
	}
	start := time.Now()
	if err := job.LaunchOn([]*core.Engine{eA, eB}, place, nil); err != nil {
		return RelayResult{}, err
	}
	// Sampling / duration loop.
	if cfg.OnSample != nil && cfg.SampleEvery > 0 {
		ticker := time.NewTicker(cfg.SampleEvery)
		end := time.After(cfg.Duration)
	loop:
		for {
			select {
			case <-ticker.C:
				cfg.OnSample(time.Since(start), received.Load())
			case <-end:
				ticker.Stop()
				break loop
			}
		}
	} else {
		time.Sleep(cfg.Duration)
	}
	stop.Store(true)
	if err := job.Stop(60 * time.Second); err != nil {
		return RelayResult{}, err
	}
	elapsed := time.Since(start)

	res := RelayResult{
		Received: received.Load(),
		Elapsed:  elapsed,
	}
	if elapsed > 0 {
		res.Throughput = float64(res.Received) / elapsed.Seconds()
	}
	lat := job.LatencySnapshot("receiver")
	res.MeanLatency = time.Duration(lat.MeanNs)
	res.P50Latency = time.Duration(lat.P50Ns)
	res.P99Latency = time.Duration(lat.P99Ns)
	res.BytesOut = eA.Metrics().Counter("bytes_out").Value()
	res.BatchesOut = eA.Metrics().Counter("batches_out").Value()
	res.Switches = eB.ContextSwitches()
	res.PoolHitRate = eA.PacketPoolStats().HitRate()
	if qh := job.LatencyHealth(); qh.Enabled {
		res.QoSEscalations = qh.Escalations
		res.QoSRelaxations = qh.Relaxations
		res.ChainedLinks = qh.ChainedLinks
		res.ChainDelivered = qh.ChainDelivered
	}
	return res, nil
}

// spin busy-waits for roughly ns nanoseconds, standing in for CPU-bound
// per-packet processing logic.
func spin(ns int64) {
	deadline := time.Now().UnixNano() + ns
	for time.Now().UnixNano() < deadline {
	}
}

// randBytes returns n random bytes from rng.
func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}
