package experiments

import (
	"fmt"

	"repro/internal/stats"
)

// Table1 regenerates Table I: non-voluntary context switches per 5
// seconds with batched scheduling versus individual (per-message)
// scheduling, measured on the relay processor's engine. The paper
// decouples batching from buffering — both modes here run with the same
// 1 MB application-level buffers and 50 B messages; only the scheduling
// granularity differs.
//
// The counted events are scheduler context-switch equivalents (parked
// worker wakeups and yields with pending work); see DESIGN.md §3 for why
// this stands in for /proc's nonvoluntary_ctxt_switches.
func Table1(opts Options) (*Table, error) {
	opts.defaults()
	t := &Table{
		ID:      "table1",
		Title:   "Context switches per 5 seconds: batched vs. individual processing",
		Columns: []string{"mode", "mean / 5s", "stddev", "packets/s"},
	}
	var ratioBatched, ratioPer float64
	for _, batched := range []bool{true, false} {
		var sw stats.Running
		var tput stats.Running
		for trial := 0; trial < opts.Trials; trial++ {
			res, err := RunRelay(RelayConfig{
				MsgBytes:    50,
				BufferBytes: 1 << 20,
				Batching:    batched,
				Pooling:     true,
				Duration:    opts.EngineRunTime,
			})
			if err != nil {
				return nil, err
			}
			// Scale the observed switch count to a 5-second window.
			per5s := float64(res.Switches) / res.Elapsed.Seconds() * 5
			sw.Add(per5s)
			tput.Add(res.Throughput)
		}
		mode := "Batched Processing"
		if !batched {
			mode = "Individual Message Processing"
		}
		t.AddRow(mode,
			fmt.Sprintf("%.1f", sw.Mean()),
			fmt.Sprintf("%.1f", sw.StdDev()),
			fmt.Sprintf("%.0f", tput.Mean()),
		)
		if batched {
			ratioBatched = sw.Mean()
		} else {
			ratioPer = sw.Mean()
		}
	}
	if ratioBatched > 0 {
		t.AddNote("individual/batched switch ratio = %.1fx (paper: 22x — 89952.4 vs 4085.2)", ratioPer/ratioBatched)
	}
	t.AddNote("the ratio here exceeds the paper's because this accounting counts only the engine's own scheduling events; the paper's /proc counters include the JVM's and OS's background switches (~thousands per 5 s), which raise the batched-mode floor")
	return t, nil
}
