package experiments

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/packet"
	"repro/internal/storm"
)

// VersusInProcess is the engine-level counterpart of Fig. 7: the same
// three-stage relay workload on the real NEPTUNE engine and on the real
// Storm-model engine, both in this process. Unlike the cluster model,
// this measures actual code: goroutine scheduling, queue handoffs,
// allocation behavior. The paper's qualitative claims checked here:
// NEPTUNE's throughput exceeds Storm's, Storm's per-tuple path moves far
// more inter-thread messages, and Storm's unbounded queues build up while
// NEPTUNE's stay bounded.
func VersusInProcess(opts Options) (*Table, error) {
	opts.defaults()
	t := &Table{
		ID:    "fig7-engine",
		Title: "NEPTUNE vs. Storm baseline, in-process relay (real engines)",
		Columns: []string{
			"msg", "engine", "tput", "p99 latency", "handoffs/pkt", "peak queue",
		},
	}
	for _, msg := range []int{50, 1024} {
		nep, err := RunRelay(RelayConfig{
			MsgBytes:    msg,
			BufferBytes: 1 << 20,
			Batching:    true,
			Pooling:     true,
			Duration:    opts.EngineRunTime,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%dB", msg), "neptune",
			metrics.FormatRate(nep.Throughput),
			nep.P99Latency.Round(10*time.Microsecond).String(),
			fmt.Sprintf("%.2f", float64(nep.Switches)/float64(max1(nep.Received))),
			"bounded (watermarks)",
		)
		st, err := runStormRelay(msg, opts.EngineRunTime)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%dB", msg), "storm",
			metrics.FormatRate(st.throughput),
			time.Duration(st.p99).Round(10*time.Microsecond).String(),
			fmt.Sprintf("%.2f", st.handoffsPerPkt),
			fmt.Sprintf("%d", st.peakQueue),
		)
	}
	t.AddNote("paper Fig. 7: NEPTUNE outperforms Storm on throughput, latency and bandwidth; Storm's latency grows because nothing throttles its spout")
	return t, nil
}

func max1(v uint64) uint64 {
	if v == 0 {
		return 1
	}
	return v
}

type stormRelayResult struct {
	throughput     float64
	p99            int64
	handoffsPerPkt float64
	peakQueue      int
}

// runStormRelay drives the Storm-model engine on the same relay workload.
func runStormRelay(msgBytes int, duration time.Duration) (stormRelayResult, error) {
	spec := &graph.Spec{
		Name: "storm-relay",
		Operators: []graph.OperatorSpec{
			{Name: "spout", Kind: graph.KindSource},
			{Name: "relay", Kind: graph.KindProcessor},
			{Name: "sink", Kind: graph.KindProcessor},
		},
		Links: []graph.LinkSpec{
			{From: "spout", To: "relay"},
			{From: "relay", To: "sink"},
		},
	}
	spec.Normalize()
	top, err := storm.NewTopology(spec)
	if err != nil {
		return stormRelayResult{}, err
	}
	// The relay's hops cross workers in the paper's deployment: every
	// tuple pays its own serialization, as NEPTUNE's cross-engine hops
	// do (batched) in RunRelay.
	top.SetSerializeTransfers(true)
	var stop atomic.Bool
	var received atomic.Uint64
	top.SetSpout("spout", func(int) storm.Spout {
		payload := make([]byte, msgBytes)
		var i uint64
		return storm.SpoutFunc(func(ctx *storm.Context) error {
			if stop.Load() {
				return io.EOF
			}
			i++
			for k := range payload {
				payload[k] = byte('a' + (int(i)+k/8)%20)
			}
			tp := ctx.NewTuple()
			tp.AddBytes("payload", payload)
			return ctx.EmitDefault(tp)
		})
	})
	top.SetBolt("relay", func(int) storm.Bolt {
		return storm.BoltFunc(func(ctx *storm.Context, tuple *packet.Packet) error {
			return ctx.EmitDefault(tuple)
		})
	})
	top.SetBolt("sink", func(int) storm.Bolt {
		return storm.BoltFunc(func(ctx *storm.Context, tuple *packet.Packet) error {
			received.Add(1)
			return nil
		})
	})
	start := time.Now()
	if err := top.Launch(); err != nil {
		return stormRelayResult{}, err
	}
	time.Sleep(duration)
	stop.Store(true)
	// Peak queue depth before the drain empties it.
	_, peakRelay := top.QueueDepths("relay")
	_, peakSink := top.QueueDepths("sink")
	if err := top.Stop(5 * time.Minute); err != nil {
		return stormRelayResult{}, err
	}
	elapsed := time.Since(start)
	res := stormRelayResult{peakQueue: peakRelay + peakSink}
	n := received.Load()
	if elapsed > 0 {
		res.throughput = float64(n) / elapsed.Seconds()
	}
	res.p99 = top.LatencySnapshot("sink").P99
	if n > 0 {
		res.handoffsPerPkt = float64(top.Switches().Handoffs()) / float64(n)
	}
	return res, nil
}
