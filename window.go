package neptune

import (
	"time"

	"repro/internal/window"
)

// Windowed-aggregation building blocks for stream processors (the paper's
// motivating sliding-window workloads, §III-B1 and §IV-C). All windows
// are single-owner: keep one per processor instance — the engine
// guarantees an instance's Process calls never overlap.
type (
	// TumblingWindow is a fixed-size, non-overlapping count window.
	TumblingWindow = window.Tumbling
	// SlidingCountWindow aggregates the last N observations in O(1).
	SlidingCountWindow = window.SlidingCount
	// SlidingTimeWindow aggregates observations within a trailing
	// event-time span.
	SlidingTimeWindow = window.SlidingTime
	// ChangeDetector reports significant changes of a sliding mean —
	// the low-rate emission pattern NEPTUNE's flush timers exist for.
	ChangeDetector = window.ChangeDetector
	// WindowAggregate holds a window's descriptive statistics.
	WindowAggregate = window.Aggregate
)

// NewTumblingWindow creates a tumbling count window of the given size.
func NewTumblingWindow(size int) (*TumblingWindow, error) {
	return window.NewTumbling(size)
}

// NewSlidingCountWindow creates a sliding window over the last size
// observations.
func NewSlidingCountWindow(size int) (*SlidingCountWindow, error) {
	return window.NewSlidingCount(size)
}

// NewSlidingTimeWindow creates a sliding window over the trailing span of
// event time.
func NewSlidingTimeWindow(span time.Duration) (*SlidingTimeWindow, error) {
	return window.NewSlidingTime(span)
}

// NewChangeDetector creates a detector emitting when the sliding mean
// moves by relThreshold (relative; 0 defaults to 5%).
func NewChangeDetector(windowSize int, relThreshold float64) (*ChangeDetector, error) {
	return window.NewChangeDetector(windowSize, relThreshold)
}
