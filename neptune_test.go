package neptune

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.BufferSize = 4096
	cfg.FlushInterval = 2 * time.Millisecond
	cfg.VerifyOrdering = true
	return cfg
}

func TestBuilderAndRunEndToEnd(t *testing.T) {
	spec, err := NewGraph("pipeline").
		Source("gen", 1).
		Processor("double", 2).
		Processor("sum", 1).
		Link("gen", "double", "round-robin").
		Link("double", "sum", "").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	const n = 2_000
	var emitted atomic.Int64
	var total atomic.Int64
	job, err := NewJob(spec, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	job.SetSource("gen", func(int) Source {
		return SourceFunc(func(ctx *OpContext) error {
			i := emitted.Add(1) - 1
			if i >= n {
				return io.EOF
			}
			p := ctx.NewPacket()
			p.AddInt64("v", i)
			return ctx.EmitDefault(p)
		})
	})
	job.SetProcessor("double", func(int) Processor {
		return ProcessorFunc(func(ctx *OpContext, p *Packet) error {
			v, err := p.Int64("v")
			if err != nil {
				return err
			}
			out := ctx.NewPacket()
			out.AddInt64("v", 2*v)
			return ctx.EmitDefault(out)
		})
	})
	job.SetProcessor("sum", func(int) Processor {
		return ProcessorFunc(func(ctx *OpContext, p *Packet) error {
			v, err := p.Int64("v")
			if err != nil {
				return err
			}
			total.Add(v)
			return nil
		})
	})
	if err := Run(job, 30*time.Second, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	want := int64(n) * (n - 1) // sum of 2*i for i in [0, n)
	if total.Load() != want {
		t.Fatalf("sum = %d, want %d", total.Load(), want)
	}
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewGraph("bad").Processor("p", 1).Build(); err == nil {
		t.Fatal("processor-only graph accepted")
	}
	if _, err := NewGraph("bad").Source("s", 1).Processor("p", 1).
		Link("s", "ghost", "").Build(); err == nil {
		t.Fatal("dangling link accepted")
	}
	// Builder remains usable after Build.
	b := NewGraph("g").Source("s", 1).Processor("p", 1).Link("s", "p", "")
	s1, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	b.Processor("q", 1).Link("p", "q", "broadcast")
	s2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Operators) != 2 || len(s2.Operators) != 3 {
		t.Fatalf("builder state leaked: %d/%d", len(s1.Operators), len(s2.Operators))
	}
}

func TestNamedLinkSplit(t *testing.T) {
	spec, err := NewGraph("split").
		Source("src", 1).
		Processor("high", 1).
		Processor("low", 1).
		NamedLink("hi", "src", "high", "").
		NamedLink("lo", "src", "low", "").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	var i atomic.Int64
	var hiN, loN atomic.Int64
	job, err := NewJob(spec, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	job.SetSource("src", func(int) Source {
		return SourceFunc(func(ctx *OpContext) error {
			v := i.Add(1) - 1
			if v >= 1000 {
				return io.EOF
			}
			p := ctx.NewPacket()
			p.AddInt64("v", v)
			if v >= 500 {
				return ctx.Emit("hi", p)
			}
			return ctx.Emit("lo", p)
		})
	})
	job.SetProcessor("high", func(int) Processor {
		return ProcessorFunc(func(ctx *OpContext, p *Packet) error { hiN.Add(1); return nil })
	})
	job.SetProcessor("low", func(int) Processor {
		return ProcessorFunc(func(ctx *OpContext, p *Packet) error { loN.Add(1); return nil })
	})
	if err := Run(job, 30*time.Second, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if hiN.Load() != 500 || loN.Load() != 500 {
		t.Fatalf("split = %d/%d", hiN.Load(), loN.Load())
	}
}

func TestCustomPartitionerViaPublicAPI(t *testing.T) {
	type always struct{ n int }
	route := func(a *always) Partitioner { return partitionerFunc(func(n int) int { return a.n % n }) }
	if err := RegisterPartitioner("pin", func(arg string) (Partitioner, error) {
		return route(&always{n: 1}), nil
	}); err != nil {
		t.Fatal(err)
	}
	spec, err := NewGraph("pinned").
		Source("s", 1).
		Processor("p", 3).
		Link("s", "p", "pin").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]atomic.Int64, 3)
	job, err := NewJob(spec, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	var i atomic.Int64
	job.SetSource("s", func(int) Source {
		return SourceFunc(func(ctx *OpContext) error {
			if i.Add(1) > 300 {
				return io.EOF
			}
			p := ctx.NewPacket()
			p.AddInt64("v", i.Load())
			return ctx.EmitDefault(p)
		})
	})
	job.SetProcessor("p", func(idx int) Processor {
		return ProcessorFunc(func(ctx *OpContext, p *Packet) error {
			counts[idx].Add(1)
			return nil
		})
	})
	if err := Run(job, 30*time.Second, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if counts[1].Load() != 300 || counts[0].Load() != 0 || counts[2].Load() != 0 {
		t.Fatalf("pin partitioner violated: %d/%d/%d", counts[0].Load(), counts[1].Load(), counts[2].Load())
	}
	if err := RegisterPartitioner("pin", nil); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

// partitionerFunc adapts a selector to Partitioner for tests.
type partitionerFunc func(n int) int

func (partitionerFunc) Name() string { return "test" }
func (f partitionerFunc) Route(_ *Packet, n int, dst []int) []int {
	return append(dst, f(n))
}

func TestMultiEnginePublicAPI(t *testing.T) {
	cfg := testConfig()
	e1, err := NewEngine("a", cfg)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine("b", cfg)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := NewGraph("two").
		Source("s", 1).
		Processor("sink", 1).
		Link("s", "sink", "").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	var i, got atomic.Int64
	job, err := NewJob(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	job.SetSource("s", func(int) Source {
		return SourceFunc(func(ctx *OpContext) error {
			if i.Add(1) > 500 {
				return io.EOF
			}
			p := ctx.NewPacket()
			p.AddInt64("v", i.Load())
			return ctx.EmitDefault(p)
		})
	})
	job.SetProcessor("sink", func(int) Processor {
		return ProcessorFunc(func(ctx *OpContext, p *Packet) error { got.Add(1); return nil })
	})
	place := func(op string, _ int) int {
		if op == "sink" {
			return 1
		}
		return 0
	}
	if err := job.LaunchOn([]*Engine{e1, e2}, place, NewInprocBridger(0, 0)); err != nil {
		t.Fatal(err)
	}
	job.WaitSources(30 * time.Second)
	if err := job.Stop(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got.Load() != 500 {
		t.Fatalf("sink saw %d packets", got.Load())
	}
}

func TestLoadGraphMissingFile(t *testing.T) {
	if _, err := LoadGraph("/nonexistent/graph.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRunSurfacesLaunchError(t *testing.T) {
	spec, err := NewGraph("g").Source("s", 1).Processor("p", 1).Link("s", "p", "").Build()
	if err != nil {
		t.Fatal(err)
	}
	job, err := NewJob(spec, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// No factories installed: Launch must fail and Run must surface it.
	if err := Run(job, time.Second, time.Second); err == nil {
		t.Fatal("Run swallowed the launch error")
	}
}

// TestConcurrentJobsSharedProcess runs several independent jobs in one
// process, the paper's concurrent-jobs scenario at unit scale.
func TestConcurrentJobsSharedProcess(t *testing.T) {
	const jobs, n = 4, 1_000
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for jIdx := 0; jIdx < jobs; jIdx++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			spec, err := NewGraph("job").
				Source("s", 1).
				Processor("sink", 1).
				Link("s", "sink", "").
				Build()
			if err != nil {
				errs <- err
				return
			}
			var i, got atomic.Int64
			job, err := NewJob(spec, testConfig())
			if err != nil {
				errs <- err
				return
			}
			job.SetSource("s", func(int) Source {
				return SourceFunc(func(ctx *OpContext) error {
					if i.Add(1) > n {
						return io.EOF
					}
					p := ctx.NewPacket()
					p.AddInt64("v", i.Load()+seed)
					return ctx.EmitDefault(p)
				})
			})
			job.SetProcessor("sink", func(int) Processor {
				return ProcessorFunc(func(ctx *OpContext, p *Packet) error { got.Add(1); return nil })
			})
			if err := Run(job, 30*time.Second, 30*time.Second); err != nil {
				errs <- err
				return
			}
			if got.Load() != n {
				errs <- errors.New("lost packets in concurrent job")
			}
		}(int64(jIdx) << 32)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
