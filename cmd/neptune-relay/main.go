// Command neptune-relay runs the paper's Fig. 1 three-stage message relay
// on the real engine — sender and receiver on one engine, the relay on a
// second — and prints live throughput/latency once per second, the
// workload behind Fig. 2, Table I, and the headline single-node number.
//
// Usage:
//
//	neptune-relay -msg 50 -buffer 1048576 -duration 10s
//	neptune-relay -msg 10240 -buffer 16384 -flush 5ms -compress 6.5
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	msg := flag.Int("msg", 50, "message payload bytes")
	buffer := flag.Int("buffer", 1<<20, "application-level buffer bytes")
	flush := flag.Duration("flush", 10*time.Millisecond, "buffer flush timer bound")
	duration := flag.Duration("duration", 10*time.Second, "run duration")
	compress := flag.Float64("compress", 0, "compression entropy threshold in bits/byte (0 = off)")
	batching := flag.Bool("batching", true, "batched scheduling")
	pooling := flag.Bool("pooling", true, "object reuse")
	flag.Parse()

	fmt.Printf("three-stage relay: %dB messages, %s buffers, flush <= %v\n",
		*msg, fmtBytes(*buffer), *flush)

	var last uint64
	var lastAt time.Duration
	res, err := experiments.RunRelay(experiments.RelayConfig{
		MsgBytes:             *msg,
		BufferBytes:          *buffer,
		FlushInterval:        *flush,
		Batching:             *batching,
		Pooling:              *pooling,
		CompressionThreshold: *compress,
		Duration:             *duration,
		SampleEvery:          time.Second,
		OnSample: func(elapsed time.Duration, received uint64) {
			dt := (elapsed - lastAt).Seconds()
			if dt > 0 {
				fmt.Printf("  t=%-6s rate=%s total=%d\n",
					elapsed.Round(time.Second),
					metrics.FormatRate(float64(received-last)/dt),
					received)
			}
			last, lastAt = received, elapsed
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "neptune-relay: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\ndone: %d packets in %v\n", res.Received, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput : %s\n", metrics.FormatRate(res.Throughput))
	fmt.Printf("  latency    : mean %v, p50 %v, p99 %v\n",
		res.MeanLatency.Round(time.Microsecond),
		res.P50Latency.Round(time.Microsecond),
		res.P99Latency.Round(time.Microsecond))
	fmt.Printf("  sender IO  : %d batches, %s payload\n", res.BatchesOut, fmtBytes(int(res.BytesOut)))
	fmt.Printf("  relay node : %d context-switch equivalents\n", res.Switches)
	fmt.Printf("  packet pool: %.1f%% hit rate\n", res.PoolHitRate*100)
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
