// Command neptune-bench regenerates the paper's evaluation: every table
// and figure has a corresponding experiment whose output mirrors the rows
// or series the paper reports.
//
// Usage:
//
//	neptune-bench -exp all                 # everything (several minutes)
//	neptune-bench -exp fig7                # one artifact
//	neptune-bench -exp table1 -runtime 2s  # longer measurement windows
//
// Experiments: fig2, table1, objreuse, fig4, compression, fig5, fig6,
// fig7, fig9, fig10, headline, ablation, chaos, recovery, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig2|table1|objreuse|fig4|compression|fig5|fig6|fig7|fig7-engine|fig9|fig10|headline|ablation|chaos|recovery|all)")
	runtime := flag.Duration("runtime", 400*time.Millisecond, "measurement window per real-engine run")
	trials := flag.Int("trials", 5, "trials for statistical experiments")
	flag.Parse()

	opts := experiments.Options{EngineRunTime: *runtime, Trials: *trials}

	type entry struct {
		id string
		fn func() (*experiments.Table, error)
	}
	all := []entry{
		{"fig2", func() (*experiments.Table, error) { return experiments.Fig2(opts) }},
		{"table1", func() (*experiments.Table, error) { return experiments.Table1(opts) }},
		{"objreuse", func() (*experiments.Table, error) { return experiments.ObjectReuse(opts) }},
		{"fig4", func() (*experiments.Table, error) { return experiments.Fig4(opts) }},
		{"compression", func() (*experiments.Table, error) { return experiments.Compression(opts) }},
		{"fig5", experiments.Fig5},
		{"fig6", experiments.Fig6},
		{"fig7", experiments.Fig7},
		{"fig7-engine", func() (*experiments.Table, error) { return experiments.VersusInProcess(opts) }},
		{"fig9", experiments.Fig9},
		{"fig10", experiments.Fig10},
		{"headline", experiments.Headline},
		{"ablation", func() (*experiments.Table, error) { return experiments.Ablation(opts) }},
		{"chaos", func() (*experiments.Table, error) { return experiments.Chaos(opts) }},
		{"recovery", func() (*experiments.Table, error) { return experiments.Recovery(opts) }},
	}

	ran := 0
	for _, e := range all {
		if *exp != "all" && *exp != e.id {
			continue
		}
		ran++
		start := time.Now()
		tab, err := e.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "neptune-bench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(tab.Render())
		fmt.Printf("(%s took %s)\n\n", e.id, time.Since(start).Round(time.Millisecond))
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "neptune-bench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}
