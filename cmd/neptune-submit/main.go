// Command neptune-submit runs a stream processing job described by a JSON
// graph descriptor (paper §III-A7), binding each operator name to one of
// the built-in operator kinds:
//
//	gen[:BYTES]   source emitting BYTES-byte synthetic packets (default 100)
//	debs          source emitting manufacturing-equipment readings
//	forward       processor relaying packets unchanged
//	monitor       processor tracking sensor->valve actuation delay
//	count         sink counting packets (prints totals at exit)
//
// Usage:
//
//	neptune-submit -graph relay.json -ops sender=gen:50,relay=forward,receiver=count -duration 5s
//
// Example descriptor:
//
//	{
//	  "name": "relay",
//	  "operators": [
//	    {"name": "sender", "kind": "source"},
//	    {"name": "relay", "kind": "processor"},
//	    {"name": "receiver", "kind": "processor"}
//	  ],
//	  "links": [
//	    {"from": "sender", "to": "relay"},
//	    {"from": "relay", "to": "receiver"}
//	  ]
//	}
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	neptune "repro"
	"repro/internal/debs"
	"repro/internal/metrics"
)

func main() {
	graphPath := flag.String("graph", "", "path to JSON graph descriptor")
	opsFlag := flag.String("ops", "", "operator bindings: name=kind[,name=kind...]")
	duration := flag.Duration("duration", 5*time.Second, "run duration for unbounded sources")
	buffer := flag.Int("buffer", 1<<20, "application-level buffer bytes")
	flag.Parse()
	if *graphPath == "" || *opsFlag == "" {
		flag.Usage()
		os.Exit(2)
	}

	spec, err := neptune.LoadGraph(*graphPath)
	if err != nil {
		fatal(err)
	}
	cfg := neptune.DefaultConfig()
	cfg.BufferSize = *buffer
	job, err := neptune.NewJob(spec, cfg)
	if err != nil {
		fatal(err)
	}

	var stopFlag atomic.Bool
	counts := map[string]*atomic.Uint64{}
	for _, binding := range strings.Split(*opsFlag, ",") {
		name, kind, ok := strings.Cut(strings.TrimSpace(binding), "=")
		if !ok {
			fatal(fmt.Errorf("bad binding %q (want name=kind)", binding))
		}
		if err := bind(job, name, kind, &stopFlag, counts); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("submitting %q (%d operators, %d links) for %v\n",
		spec.Name, len(spec.Operators), len(spec.Links), *duration)
	if err := job.Launch(); err != nil {
		fatal(err)
	}
	if !job.WaitSources(*duration) {
		stopFlag.Store(true)
	}
	if err := job.Stop(60 * time.Second); err != nil {
		fatal(err)
	}
	for name, c := range counts {
		fmt.Printf("  %-12s %d packets (%s over the run)\n",
			name, c.Load(), metrics.FormatRate(float64(c.Load())/duration.Seconds()))
	}
	fmt.Println("done")
}

// bind attaches a built-in operator implementation to the named operator.
func bind(job *neptune.Job, name, kind string, stop *atomic.Bool, counts map[string]*atomic.Uint64) error {
	base, arg, _ := strings.Cut(kind, ":")
	switch base {
	case "gen":
		size := 100
		if arg != "" {
			v, err := strconv.Atoi(arg)
			if err != nil || v < 1 {
				return fmt.Errorf("gen: bad size %q", arg)
			}
			size = v
		}
		job.SetSource(name, func(int) neptune.Source {
			buf := make([]byte, size)
			var i uint64
			return neptune.SourceFunc(func(ctx *neptune.OpContext) error {
				if stop.Load() {
					return io.EOF
				}
				i++
				for k := range buf {
					buf[k] = byte('a' + (int(i)+k/8)%20)
				}
				p := ctx.NewPacket()
				p.AddBytes("payload", buf)
				return ctx.EmitDefault(p)
			})
		})
	case "debs":
		job.SetSource(name, func(inst int) neptune.Source {
			g := debs.NewGenerator(int64(inst) + 1)
			return neptune.SourceFunc(func(ctx *neptune.OpContext) error {
				if stop.Load() {
					return io.EOF
				}
				p := ctx.NewPacket()
				debs.FillPacket(p, g.Next())
				return ctx.EmitDefault(p)
			})
		})
	case "forward":
		job.SetProcessor(name, func(int) neptune.Processor {
			return neptune.ProcessorFunc(func(ctx *neptune.OpContext, p *neptune.Packet) error {
				return ctx.EmitDefault(p)
			})
		})
	case "monitor":
		job.SetProcessor(name, func(int) neptune.Processor {
			m := debs.NewMonitor(24 * time.Hour)
			return neptune.ProcessorFunc(func(ctx *neptune.OpContext, p *neptune.Packet) error {
				acts, err := m.Observe(p)
				if err != nil {
					return err
				}
				for _, a := range acts {
					out := ctx.NewPacket()
					out.AddInt64("sensor", int64(a.Sensor))
					out.AddInt64("delay_ns", a.DelayNs)
					if err := ctx.EmitDefault(out); err != nil {
						return err
					}
				}
				return nil
			})
		})
	case "count":
		c := &atomic.Uint64{}
		counts[name] = c
		job.SetProcessor(name, func(int) neptune.Processor {
			return neptune.ProcessorFunc(func(ctx *neptune.OpContext, p *neptune.Packet) error {
				c.Add(1)
				return nil
			})
		})
	default:
		return fmt.Errorf("unknown operator kind %q (want gen|debs|forward|monitor|count)", kind)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "neptune-submit: %v\n", err)
	os.Exit(1)
}
