// neptune-soak drives randomized, invariant-checked chaos rounds
// against live jobs (DESIGN §15). Every round is a pure function of its
// seed — scenario, fault schedule, job wiring — so any failure replays
// deterministically:
//
//	go run ./cmd/neptune-soak                     # 20 rounds, time-derived base seed
//	go run ./cmd/neptune-soak -rounds 200         # the nightly long haul
//	go run ./cmd/neptune-soak -seed 42            # fixed base seed: reproducible round set
//	go run ./cmd/neptune-soak -replay 1337        # re-run exactly one failed round
//
// Each round's derived seed is printed before it runs, so a hung or
// crashed process still identifies the round that did it. On the first
// invariant violation the full replay artifact (schedule, violations,
// fault stats) is written to -artifact and the process exits 1.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/soak"
)

func main() {
	rounds := flag.Int("rounds", 20, "randomized rounds to run")
	baseSeed := flag.Int64("seed", 0, "base seed for the round set (0 = derived from time)")
	replay := flag.Int64("replay", 0, "replay exactly one round with this seed, then exit")
	n := flag.Int64("n", 0, "keys per round (0 = default 6000)")
	horizon := flag.Duration("horizon", 0, "chaos schedule horizon per round (0 = default 1.2s)")
	timeout := flag.Duration("timeout", 0, "overall wall-clock budget; stop cleanly when exceeded (0 = none)")
	artifact := flag.String("artifact", "neptune-soak-failure.txt", "file for the failure replay artifact")
	verbose := flag.Bool("v", false, "print every round's report")
	flag.Parse()

	opts := soak.Options{N: *n, Horizon: *horizon}

	if *replay != 0 {
		scenario, sched := soak.Plan(*replay, opts)
		fmt.Printf("replaying seed=%d scenario=%s (%d actions)\n", *replay, scenario, len(sched.Actions))
		r := soak.RunRound(*replay, opts)
		fmt.Print(r.Report())
		if r.Failed() {
			writeArtifact(*artifact, r)
			os.Exit(1)
		}
		return
	}

	base := *baseSeed
	if base == 0 {
		base = time.Now().UnixNano()
	}
	fmt.Printf("soak: %d rounds, base seed %d\n", *rounds, base)

	start := time.Now()
	for i := 0; i < *rounds; i++ {
		if *timeout > 0 && time.Since(start) > *timeout {
			fmt.Printf("soak: wall-clock budget %s exhausted after %d/%d rounds, stopping clean\n",
				*timeout, i, *rounds)
			return
		}
		seed := deriveSeed(base, i)
		scenario, sched := soak.Plan(seed, opts)
		// Seed first, result after: a wedged round is still identifiable.
		fmt.Printf("round %d/%d seed=%d scenario=%s actions=%d ... ", i+1, *rounds, seed, scenario, len(sched.Actions))
		r := soak.RunRound(seed, opts)
		if r.Failed() {
			fmt.Println("FAILED")
			fmt.Print(r.Report())
			writeArtifact(*artifact, r)
			fmt.Printf("replay artifact written to %s\n", *artifact)
			os.Exit(1)
		}
		fmt.Printf("ok (delivered=%d/%d applied=%d restarts=%d skipped=%d %s)\n",
			r.Delivered, r.Expected, r.Applied, r.Health.Restarts, r.Health.SkippedEpochs,
			r.Elapsed.Round(time.Millisecond))
		if *verbose {
			fmt.Print(r.Report())
		}
	}
	fmt.Printf("soak: %d rounds clean in %s\n", *rounds, time.Since(start).Round(time.Second))
}

// deriveSeed mixes the base seed and round index (splitmix64), so one
// printed round seed replays alone while the whole set stays a function
// of the base seed.
func deriveSeed(base int64, round int) int64 {
	z := uint64(base) + uint64(round+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	seed := int64(z)
	if seed == 0 {
		seed = 1 // 0 means "unset" to the flag layer; never emit it
	}
	return seed
}

func writeArtifact(path string, r *soak.Result) {
	if path == "" {
		return
	}
	if err := os.WriteFile(path, []byte(r.Report()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "soak: write artifact: %v\n", err)
	}
}
