// Command neptune-vet runs the NEPTUNE-specific static analyzers
// (internal/lint) over the module and exits non-zero on any finding that
// is not covered by the allowlist. It is wired into scripts/check.sh
// between `go vet` and the build.
//
// Usage:
//
//	go run ./cmd/neptune-vet ./...
//	go run ./cmd/neptune-vet -rules
//	go run ./cmd/neptune-vet -allow .neptune-vet-allow ./internal/...
package main

import (
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(lint.MainOS())
}
