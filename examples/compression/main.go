// Compression: the paper's §III-B5 entropy-gated compression study at
// example scale.
//
// Two streams of identical record size flow through a two-engine job:
// consecutive manufacturing-equipment readings (low entropy — sensor
// values rarely change) and random bytes (high entropy). For each stream
// the job runs with compression off, always-on, and NEPTUNE's selective
// entropy-gated mode, printing throughput and wire bytes per packet.
//
//	go run ./examples/compression [-duration 2s]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"sync/atomic"
	"time"

	neptune "repro"
	"repro/internal/compression"
	"repro/internal/debs"
	"repro/internal/metrics"
)

func main() {
	duration := flag.Duration("duration", 2*time.Second, "run duration per configuration")
	flag.Parse()

	// Show the datasets' entropy first — the property the gate keys on.
	g := debs.NewGenerator(1)
	var sensorBatch []byte
	for i := 0; i < 64; i++ {
		sensorBatch = debs.AppendRecord(sensorBatch, g.Next())
	}
	rng := rand.New(rand.NewSource(1))
	var randomBatch []byte
	for i := 0; i < 64; i++ {
		randomBatch = debs.AppendRandomRecord(randomBatch, rng)
	}
	fmt.Printf("batch entropy: sensor %.2f bits/byte, random %.2f bits/byte\n\n",
		compression.Entropy(sensorBatch), compression.Entropy(randomBatch))

	fmt.Printf("%-8s %-10s %12s %14s\n", "dataset", "mode", "throughput", "wire B/pkt")
	for _, dataset := range []string{"sensor", "random"} {
		for _, mode := range []struct {
			name   string
			thresh float64
		}{
			{"off", 0},
			{"always", 8},
			{"selective", 6.5},
		} {
			tput, wirePerPkt, err := run(dataset, mode.thresh, *duration)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s %-10s %12s %14.1f\n",
				dataset, mode.name, metrics.FormatRate(tput), wirePerPkt)
		}
	}
	fmt.Println("\npaper: compression hurts random data, is neutral-to-helpful for")
	fmt.Println("low-entropy sensor data — so it must be configured per stream.")
}

// run executes a two-engine source->sink job for the dataset with the
// given compression threshold, returning throughput and wire bytes per
// packet.
func run(dataset string, threshold float64, duration time.Duration) (float64, float64, error) {
	spec, err := neptune.NewGraph("compression-"+dataset).
		Source("src", 1).
		Processor("sink", 1).
		Link("src", "sink", "").
		Build()
	if err != nil {
		return 0, 0, err
	}
	cfg := neptune.DefaultConfig()
	cfg.BufferSize = 64 << 10
	cfg.CompressionThreshold = threshold

	engineA, err := neptune.NewEngine("A", cfg)
	if err != nil {
		return 0, 0, err
	}
	engineB, err := neptune.NewEngine("B", cfg)
	if err != nil {
		return 0, 0, err
	}
	job, err := neptune.NewJob(spec, cfg)
	if err != nil {
		return 0, 0, err
	}

	var stop atomic.Bool
	gen := debs.NewGenerator(7)
	rng := rand.New(rand.NewSource(7))
	job.SetSource("src", func(int) neptune.Source {
		buf := make([]byte, 0, debs.RecordSize)
		return neptune.SourceFunc(func(ctx *neptune.OpContext) error {
			if stop.Load() {
				return io.EOF
			}
			if dataset == "sensor" {
				buf = debs.AppendRecord(buf[:0], gen.Next())
			} else {
				buf = debs.AppendRandomRecord(buf[:0], rng)
			}
			p := ctx.NewPacket()
			p.AddBytes("rec", buf)
			return ctx.EmitDefault(p)
		})
	})
	var received atomic.Uint64
	job.SetProcessor("sink", func(int) neptune.Processor {
		return neptune.ProcessorFunc(func(ctx *neptune.OpContext, p *neptune.Packet) error {
			received.Add(1)
			return nil
		})
	})

	place := func(op string, _ int) int {
		if op == "sink" {
			return 1
		}
		return 0
	}
	start := time.Now()
	if err := job.LaunchOn([]*neptune.Engine{engineA, engineB}, place, neptune.NewInprocBridger(0, 0)); err != nil {
		return 0, 0, err
	}
	time.Sleep(duration)
	stop.Store(true)
	if err := job.Stop(time.Minute); err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start).Seconds()
	n := received.Load()
	if n == 0 {
		return 0, 0, fmt.Errorf("no packets delivered")
	}
	wire := engineA.Metrics().Counter("bytes_out").Value()
	return float64(n) / elapsed, float64(wire) / float64(n), nil
}
