// Telemetry: offered-load ingestion with time-driven window emission.
//
// An IoT gateway pushes CPU-temperature telemetry at a fixed rate (the
// source is wrapped with neptune.Throttle — sensors set the pace, not the
// engine). A windowed processor keeps a sliding average per device and,
// being a TickingProcessor, publishes a summary every 250 ms even when
// the stream goes quiet — the emit-on-time pattern that NEPTUNE's
// combined (data-driven + periodic) Granules scheduling enables.
//
// The job also runs under a latency target (-target), so the adaptive
// QoS runtime is live: at exit the per-link LatencyHealth snapshot shows
// each link's smoothed p50/p99 sojourn, tuning level, and whether the
// quiet window -> dashboard link was fused into a direct call (the
// ticking window stage itself is never a fusion receiver).
//
//	go run ./examples/telemetry [-rate 5000] [-duration 5s] [-target 20ms]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"sync/atomic"
	"time"

	neptune "repro"
)

const devices = 3

func main() {
	rate := flag.Float64("rate", 5000, "telemetry packets per second")
	duration := flag.Duration("duration", 5*time.Second, "run duration")
	target := flag.Duration("target", 20*time.Millisecond, "QoS latency target (0 disables)")
	flag.Parse()

	spec, err := neptune.NewGraph("telemetry").
		Source("gateway", 1).
		Processor("window", 1).
		Processor("dashboard", 1).
		Link("gateway", "window", "fields:device").
		Link("window", "dashboard", "").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	cfg := neptune.DefaultConfig()
	cfg.LatencyTarget = *target
	job, err := neptune.NewJob(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}

	var stop atomic.Bool
	var tick atomic.Int64
	raw := neptune.SourceFunc(func(ctx *neptune.OpContext) error {
		if stop.Load() {
			return io.EOF
		}
		i := tick.Add(1)
		p := ctx.NewPacket()
		p.AddInt64("device", i%devices)
		p.AddFloat64("temp", 55+8*math.Sin(float64(i)/2000)+float64(i%7)*0.1)
		return ctx.EmitDefault(p)
	})
	job.SetSource("gateway", func(int) neptune.Source {
		return neptune.Throttle(*rate, 64, raw)
	})

	job.SetProcessor("window", func(int) neptune.Processor {
		return newWindower()
	})

	var summaries atomic.Int64
	job.SetProcessor("dashboard", func(int) neptune.Processor {
		return neptune.ProcessorFunc(func(ctx *neptune.OpContext, p *neptune.Packet) error {
			dev, _ := p.Int64("device")
			mean, _ := p.Float64("mean")
			n, _ := p.Int64("n")
			fmt.Printf("  device %d: sliding mean %.2f°C over %d samples\n", dev, mean, n)
			summaries.Add(1)
			return nil
		})
	})

	if err := job.Launch(); err != nil {
		log.Fatal(err)
	}
	time.Sleep(*duration)
	stop.Store(true)
	qh := job.LatencyHealth() // snapshot while the links are still live
	if err := job.Stop(time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d telemetry packets at %.0f/s produced %d window summaries\n",
		tick.Load(), *rate, summaries.Load())
	printLatencyHealth(qh)
}

// printLatencyHealth renders the QoS runtime snapshot: one line per link
// plus the controller's action tallies.
func printLatencyHealth(h neptune.LatencyHealth) {
	if !h.Enabled {
		fmt.Println("\nQoS runtime disabled (no latency target)")
		return
	}
	fmt.Printf("\nQoS runtime (target %v):\n", h.Target)
	for _, l := range h.Links {
		state := "buffered"
		if l.Chained {
			state = "fused"
		} else if l.Chainable {
			state = "chainable"
		}
		fmt.Printf("  %-28s p50 %-10v p99 %-10v level %d  %s  %d pkts (%d via direct call)\n",
			l.Link, l.P50, l.P99, l.Level, state, l.Packets, l.ChainDelivered)
	}
	fmt.Printf("  controller: %d escalations, %d relaxations, %d fusions, %d breaks (%d flips failed)\n",
		h.Escalations, h.Relaxations, h.ChainFlips, h.UnchainFlips, h.FlipFailures)
}

// windower keeps a sliding window per device and emits summaries on time.
type windower struct {
	wins map[int64]*neptune.SlidingCountWindow
}

func newWindower() *windower {
	return &windower{wins: map[int64]*neptune.SlidingCountWindow{}}
}

// Open implements neptune.Processor.
func (w *windower) Open(*neptune.OpContext) error { return nil }

// Close implements neptune.Processor.
func (w *windower) Close() error { return nil }

// Process folds one reading into its device's window.
func (w *windower) Process(ctx *neptune.OpContext, p *neptune.Packet) error {
	dev, err := p.Int64("device")
	if err != nil {
		return err
	}
	temp, err := p.Float64("temp")
	if err != nil {
		return err
	}
	win := w.wins[dev]
	if win == nil {
		win, err = neptune.NewSlidingCountWindow(512)
		if err != nil {
			return err
		}
		w.wins[dev] = win
	}
	win.Add(temp)
	return nil
}

// TickInterval implements neptune.TickingProcessor.
func (w *windower) TickInterval() time.Duration { return 250 * time.Millisecond }

// Tick publishes each device's current window summary.
func (w *windower) Tick(ctx *neptune.OpContext) error {
	for dev, win := range w.wins {
		if win.Count() == 0 {
			continue
		}
		out := ctx.NewPacket()
		out.AddInt64("device", dev)
		out.AddFloat64("mean", win.Mean())
		out.AddInt64("n", int64(win.Count()))
		if err := ctx.EmitDefault(out); err != nil {
			return err
		}
	}
	return nil
}
