// Manufacturing: the paper's Fig. 8 equipment-monitoring job.
//
// A stream of manufacturing-equipment readings (the DEBS 2012 Grand
// Challenge use case) flows through a four-stage graph: ingest readings,
// project the 6 monitored fields (+ timestamp) out of the 66 available,
// track the delay between each chemical-additive sensor's state change
// and the actuation of its corresponding valve over a 24-hour window
// (keyed by equipment so one instance owns one machine's state), and
// aggregate alerts for actuations slower than a threshold.
//
//	go run ./examples/manufacturing [-machines 4] [-readings 2000000]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"sync"
	"sync/atomic"
	"time"

	neptune "repro"
	"repro/internal/debs"
	"repro/internal/metrics"
)

func main() {
	machines := flag.Int("machines", 4, "simulated machines (ingest parallelism)")
	readings := flag.Int64("readings", 2_000_000, "total readings to process")
	slowNs := flag.Int64("slow", int64(400*time.Millisecond), "actuation delay alert threshold (ns)")
	flag.Parse()

	spec, err := neptune.NewGraph("manufacturing").
		Source("ingest", *machines).
		Processor("project", 2).
		Processor("monitor", 2).
		Processor("alerts", 1).
		// Key both hops by machine: per-machine reading order must be
		// preserved end-to-end or actuation delays are meaningless.
		Link("ingest", "project", "fields:machine").
		Link("project", "monitor", "fields:machine").
		Link("monitor", "alerts", "").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	job, err := neptune.NewJob(spec, neptune.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Stage 1 — ingest: each instance simulates one machine's sensor
	// gateway, producing full 66-field readings.
	perMachine := *readings / int64(*machines)
	job.SetSource("ingest", func(instance int) neptune.Source {
		g := debs.NewGenerator(int64(instance) + 1)
		var n int64
		return neptune.SourceFunc(func(ctx *neptune.OpContext) error {
			if n >= perMachine {
				return io.EOF
			}
			n++
			p := ctx.NewPacket()
			p.AddInt64("machine", int64(instance))
			debs.FillPacketFull(p, g.Next())
			return ctx.EmitDefault(p)
		})
	})

	// Stage 2 — project: keep the timestamp, 3 sensors, 3 valves.
	job.SetProcessor("project", func(int) neptune.Processor {
		return neptune.ProcessorFunc(func(ctx *neptune.OpContext, p *neptune.Packet) error {
			out := ctx.NewPacket()
			machine, err := p.Int64("machine")
			if err != nil {
				return err
			}
			out.AddInt64("machine", machine)
			ts, err := p.Int64("ts")
			if err != nil {
				return err
			}
			out.AddInt64("ts", ts)
			for _, f := range [...]string{"s1", "s2", "s3", "v1", "v2", "v3"} {
				v, err := p.Bool(f)
				if err != nil {
					return err
				}
				out.AddBool(f, v)
			}
			return ctx.EmitDefault(out)
		})
	})

	// Stage 3 — monitor: per-machine actuation-delay tracking over the
	// paper's 24-hour window.
	var actuations atomic.Int64
	job.SetProcessor("monitor", func(int) neptune.Processor {
		monitors := map[int64]*debs.Monitor{}
		return neptune.ProcessorFunc(func(ctx *neptune.OpContext, p *neptune.Packet) error {
			machine, err := p.Int64("machine")
			if err != nil {
				return err
			}
			m := monitors[machine]
			if m == nil {
				m = debs.NewMonitor(24 * time.Hour)
				monitors[machine] = m
			}
			acts, err := m.Observe(p)
			if err != nil {
				return err
			}
			for _, a := range acts {
				actuations.Add(1)
				out := ctx.NewPacket()
				out.AddInt64("machine", machine)
				out.AddInt64("sensor", int64(a.Sensor))
				out.AddInt64("delay_ns", a.DelayNs)
				count, meanNs, maxNs := m.WindowStats(a.Sensor)
				out.AddInt64("win_count", int64(count))
				out.AddInt64("win_mean_ns", meanNs)
				out.AddInt64("win_max_ns", maxNs)
				if err := ctx.EmitDefault(out); err != nil {
					return err
				}
			}
			return nil
		})
	})

	// Stage 4 — alerts: report slow actuations.
	var mu sync.Mutex
	slowest := map[int64]time.Duration{}
	var slowCount atomic.Int64
	job.SetProcessor("alerts", func(int) neptune.Processor {
		return neptune.ProcessorFunc(func(ctx *neptune.OpContext, p *neptune.Packet) error {
			machine, _ := p.Int64("machine")
			delay, _ := p.Int64("delay_ns")
			mu.Lock()
			if d := time.Duration(delay); d > slowest[machine] {
				slowest[machine] = d
			}
			mu.Unlock()
			if delay > *slowNs {
				slowCount.Add(1)
			}
			return nil
		})
	})

	start := time.Now()
	if err := neptune.Run(job, 10*time.Minute, time.Minute); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("processed %d readings from %d machines in %v (%s)\n",
		*readings, *machines, elapsed.Round(time.Millisecond),
		metrics.FormatRate(float64(*readings)/elapsed.Seconds()))
	fmt.Printf("valve actuations detected: %d (%d slower than %v)\n",
		actuations.Load(), slowCount.Load(), time.Duration(*slowNs))
	mu.Lock()
	for m, d := range slowest {
		fmt.Printf("  machine %d: slowest actuation %v\n", m, d.Round(time.Millisecond))
	}
	mu.Unlock()
}
