// Backpressure: the paper's Fig. 3/4 demonstration.
//
// A three-stage job's final stage (stage C) sleeps after each packet; the
// sleep interval cycles 0 → 1 → 2 → 3 → 2 → 1 → 0 ms. Watch the source's
// emission rate track the inverse of stage C's delay as backpressure
// propagates A ← B ← C through the bounded buffers — with zero packets
// dropped.
//
//	go run ./examples/backpressure [-phase 2s]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"strings"
	"sync/atomic"
	"time"

	neptune "repro"
	"repro/internal/metrics"
)

func main() {
	phase := flag.Duration("phase", 2*time.Second, "duration of each sleep phase")
	flag.Parse()

	spec, err := neptune.NewGraph("backpressure").
		Source("stageA", 1).
		Processor("stageB", 1).
		Processor("stageC", 1).
		Link("stageA", "stageB", "").
		Link("stageB", "stageC", "").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	cfg := neptune.DefaultConfig()
	cfg.BufferSize = 16 << 10 // small buffers keep the control loop tight
	cfg.InHighWatermark = 64 << 10
	cfg.InLowWatermark = 32 << 10
	cfg.FlowSignals = true // advertise stage C's gate upstream to hold stage A directly

	job, err := neptune.NewJob(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}

	var stop atomic.Bool
	var emitted, processed atomic.Uint64
	var sleepNs atomic.Int64

	job.SetSource("stageA", func(int) neptune.Source {
		payload := make([]byte, 100)
		return neptune.SourceFunc(func(ctx *neptune.OpContext) error {
			if stop.Load() {
				return io.EOF
			}
			p := ctx.NewPacket()
			p.AddBytes("payload", payload)
			if err := ctx.EmitDefault(p); err != nil {
				return err
			}
			emitted.Add(1)
			return nil
		})
	})
	job.SetProcessor("stageB", func(int) neptune.Processor {
		return neptune.ProcessorFunc(func(ctx *neptune.OpContext, p *neptune.Packet) error {
			return ctx.EmitDefault(p)
		})
	})
	job.SetProcessor("stageC", func(int) neptune.Processor {
		return neptune.ProcessorFunc(func(ctx *neptune.OpContext, p *neptune.Packet) error {
			processed.Add(1)
			if d := sleepNs.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
			return nil
		})
	})

	if err := job.Launch(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("sleep | source rate (each ▍≈ 2% of max)")
	sleeps := []int64{0, 1, 2, 3, 2, 1, 0}
	var maxRate float64
	for _, ms := range sleeps {
		sleepNs.Store(ms * int64(time.Millisecond))
		before := emitted.Load()
		time.Sleep(*phase)
		rate := float64(emitted.Load()-before) / phase.Seconds()
		if rate > maxRate {
			maxRate = rate
		}
		bars := int(rate / maxRate * 50)
		fmt.Printf("%d ms  | %-50s %s\n", ms, strings.Repeat("▍", bars),
			metrics.FormatRate(rate))
	}

	stop.Store(true)
	fh := job.FlowHealth()
	if err := job.Stop(time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nemitted %d, processed %d — nothing dropped: %v\n",
		emitted.Load(), processed.Load(), emitted.Load() == processed.Load())
	fmt.Printf("flow health: %d gate closures, %d advertisements, %d credit grants, "+
		"source held %d times for %v\n",
		fh.InboundGateClosures, fh.Advertisements, fh.CreditGrants,
		fh.SourceHolds, time.Duration(fh.SourceHeldNs))
}
