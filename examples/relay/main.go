// Relay: the paper's Fig. 1 three-stage message relay across two engines.
//
// Sender and receiver run on engine A, the relay on engine B, exactly as
// the paper deploys it ("the sender and receiver are deployed in the same
// Granules resource whereas the message relay was deployed in a different
// resource") — so end-to-end latency needs no clock synchronization. The
// two engines here talk over real TCP on loopback, exercising framing,
// CRC verification, kernel buffers, and TCP-propagated backpressure.
//
//	go run ./examples/relay [-msg 50] [-duration 5s]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"sync/atomic"
	"time"

	neptune "repro"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/transport"
)

func main() {
	msg := flag.Int("msg", 50, "message payload bytes")
	duration := flag.Duration("duration", 5*time.Second, "run duration")
	flag.Parse()

	spec, err := neptune.NewGraph("relay").
		Source("sender", 1).
		Processor("relay", 1).
		Processor("receiver", 1).
		Link("sender", "relay", "").
		Link("relay", "receiver", "").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	cfg := neptune.DefaultConfig()
	engineA, err := neptune.NewEngine("A", cfg)
	if err != nil {
		log.Fatal(err)
	}
	engineB, err := neptune.NewEngine("B", cfg)
	if err != nil {
		log.Fatal(err)
	}

	job, err := neptune.NewJob(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}

	var stop atomic.Bool
	var sent atomic.Uint64
	job.SetSource("sender", func(int) neptune.Source {
		payload := make([]byte, *msg)
		return neptune.SourceFunc(func(ctx *neptune.OpContext) error {
			if stop.Load() {
				return io.EOF
			}
			i := sent.Add(1)
			for k := range payload {
				payload[k] = byte(i + uint64(k))
			}
			p := ctx.NewPacket()
			p.AddBytes("payload", payload)
			return ctx.EmitDefault(p)
		})
	})
	job.SetProcessor("relay", func(int) neptune.Processor {
		return neptune.ProcessorFunc(func(ctx *neptune.OpContext, p *neptune.Packet) error {
			return ctx.EmitDefault(p) // forward unchanged
		})
	})
	var received atomic.Uint64
	job.SetProcessor("receiver", func(int) neptune.Processor {
		return neptune.ProcessorFunc(func(ctx *neptune.OpContext, p *neptune.Packet) error {
			received.Add(1)
			return nil
		})
	})

	place := func(op string, _ int) int {
		if op == "relay" {
			return 1 // engine B
		}
		return 0 // engine A
	}
	bridger := core.NewTCPBridger(transport.TCPOptions{})
	start := time.Now()
	if err := job.LaunchOn([]*neptune.Engine{engineA, engineB}, place, bridger); err != nil {
		log.Fatal(err)
	}

	// Live rate once per second.
	ticker := time.NewTicker(time.Second)
	end := time.After(*duration)
	var last uint64
loop:
	for {
		select {
		case <-ticker.C:
			now := received.Load()
			fmt.Printf("  %8s  %s\n", time.Since(start).Round(time.Second),
				metrics.FormatRate(float64(now-last)))
			last = now
		case <-end:
			ticker.Stop()
			break loop
		}
	}
	stop.Store(true)
	if err := job.Stop(time.Minute); err != nil {
		log.Fatal(err)
	}

	elapsed := time.Since(start)
	lat := job.LatencySnapshot("receiver")
	fmt.Printf("\n%d packets relayed over TCP in %v\n", received.Load(), elapsed.Round(time.Millisecond))
	fmt.Printf("  throughput: %s\n", metrics.FormatRate(float64(received.Load())/elapsed.Seconds()))
	fmt.Printf("  latency   : p50 %v, p99 %v\n",
		time.Duration(lat.P50Ns).Round(time.Microsecond),
		time.Duration(lat.P99Ns).Round(time.Microsecond))
	fmt.Printf("  sender    : %s of frames in %d batches\n",
		fmtMB(engineA.Metrics().Counter("bytes_out").Value()),
		engineA.Metrics().Counter("batches_out").Value())
	fmt.Printf("  relay node: %s of frames forwarded\n",
		fmtMB(engineB.Metrics().Counter("bytes_out").Value()))
}

func fmtMB(b uint64) string {
	return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
}
