// Quickstart: a minimal NEPTUNE stream processing job.
//
// A source emits temperature readings from four simulated sensors; a
// keyed processor tracks each sensor's running average and flags
// anomalies; a sink prints what it caught. The graph uses fields
// partitioning so one instance always owns one sensor's state.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"math"
	"sync/atomic"
	"time"

	neptune "repro"
)

const (
	sensors  = 4
	readings = 50_000
)

func main() {
	spec, err := neptune.NewGraph("quickstart").
		Source("readings", 1).
		Processor("detect", 2).
		Processor("report", 1).
		Link("readings", "detect", "fields:sensor"). // key affinity
		Link("detect", "report", "").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	job, err := neptune.NewJob(spec, neptune.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Source: synthetic temperature stream with occasional spikes.
	var emitted atomic.Int64
	job.SetSource("readings", func(int) neptune.Source {
		return neptune.SourceFunc(func(ctx *neptune.OpContext) error {
			i := emitted.Add(1) - 1
			if i >= readings {
				return io.EOF
			}
			p := ctx.NewPacket()
			p.AddInt64("sensor", i%sensors)
			temp := 20 + 5*math.Sin(float64(i)/500)
			if i%9973 == 0 { // rare spike
				temp += 40
			}
			p.AddFloat64("temp", temp)
			return ctx.EmitDefault(p)
		})
	})

	// Keyed anomaly detector: per-sensor exponential moving average.
	job.SetProcessor("detect", func(instance int) neptune.Processor {
		ema := map[int64]float64{}
		return neptune.ProcessorFunc(func(ctx *neptune.OpContext, p *neptune.Packet) error {
			sensor, err := p.Int64("sensor")
			if err != nil {
				return err
			}
			temp, err := p.Float64("temp")
			if err != nil {
				return err
			}
			avg, seen := ema[sensor]
			if !seen {
				avg = temp
			}
			if seen && math.Abs(temp-avg) > 15 {
				alert := ctx.NewPacket()
				alert.AddInt64("sensor", sensor)
				alert.AddFloat64("temp", temp)
				alert.AddFloat64("expected", avg)
				if err := ctx.EmitDefault(alert); err != nil {
					return err
				}
			}
			ema[sensor] = 0.98*avg + 0.02*temp
			return nil
		})
	})

	// Sink: print alerts.
	var alerts atomic.Int64
	job.SetProcessor("report", func(int) neptune.Processor {
		return neptune.ProcessorFunc(func(ctx *neptune.OpContext, p *neptune.Packet) error {
			sensor, _ := p.Int64("sensor")
			temp, _ := p.Float64("temp")
			expected, _ := p.Float64("expected")
			fmt.Printf("ALERT sensor %d: %.1f°C (expected ~%.1f°C)\n", sensor, temp, expected)
			alerts.Add(1)
			return nil
		})
	})

	start := time.Now()
	if err := neptune.Run(job, time.Minute, time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprocessed %d readings in %v (%d alerts)\n",
		readings, time.Since(start).Round(time.Millisecond), alerts.Load())
}
