// Chaos: the two-stage pipeline from the quickstart, run over real TCP
// while a deterministic fault injector abuses the link — an abrupt
// connection cut, then a full partition that also refuses re-dials until
// it heals. The resilient transport reconnects with backoff and redelivers
// journaled frames, so the sink still sees every packet exactly once.
//
//	go run ./examples/chaos [-n 50000] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"sync"
	"time"

	neptune "repro"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/transport"
)

func main() {
	n := flag.Int("n", 50_000, "packets to stream")
	seed := flag.Int64("seed", 7, "fault injector seed")
	flag.Parse()

	spec, err := neptune.NewGraph("chaos").
		Source("sensor", 1).
		Processor("sink", 1).
		Link("sensor", "sink", "").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	cfg := neptune.DefaultConfig()
	cfg.BufferSize = 4 << 10
	cfg.FlushInterval = time.Millisecond
	engineA, err := neptune.NewEngine("edge", cfg)
	if err != nil {
		log.Fatal(err)
	}
	engineB, err := neptune.NewEngine("hub", cfg)
	if err != nil {
		log.Fatal(err)
	}

	job, err := neptune.NewJob(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	emitted := 0
	job.SetSource("sensor", func(int) neptune.Source {
		return neptune.SourceFunc(func(ctx *neptune.OpContext) error {
			if emitted >= *n {
				return io.EOF
			}
			if emitted%500 == 499 {
				time.Sleep(time.Millisecond) // keep the stream in flight
			}
			p := ctx.NewPacket()
			p.AddInt64("i", int64(emitted))
			emitted++
			return ctx.EmitDefault(p)
		})
	})
	var mu sync.Mutex
	seen := make(map[int64]int)
	job.SetProcessor("sink", func(int) neptune.Processor {
		return neptune.ProcessorFunc(func(ctx *neptune.OpContext, p *neptune.Packet) error {
			v, err := p.Int64("i")
			if err != nil {
				return err
			}
			mu.Lock()
			seen[v]++
			mu.Unlock()
			return nil
		})
	})

	// The injector stands between the sender's framing layer and the
	// kernel socket; its Dial is handed to the resilient transport so
	// every (re)connection is under fault control.
	inj := chaos.New(*seed)
	bridger := core.NewResilientTCPBridger(transport.ResilientOptions{
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		AckTimeout:  250 * time.Millisecond,
		Dialer:      inj.Dial,
	})
	place := func(op string, _ int) int {
		if op == "sink" {
			return 1
		}
		return 0
	}
	if err := job.LaunchOn([]*neptune.Engine{engineA, engineB}, place, bridger); err != nil {
		log.Fatal(err)
	}

	progress := func(want int) {
		for {
			mu.Lock()
			got := len(seen)
			mu.Unlock()
			if got >= want {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}

	fmt.Printf("streaming %d packets over a resilient TCP link...\n", *n)
	progress(*n / 4)
	fmt.Println("  ✂  cutting the live connection")
	inj.CutAll()
	progress(*n / 2)
	fmt.Println("  ⛔ partitioning the network (dials refused)")
	inj.Partition()
	time.Sleep(100 * time.Millisecond)
	fmt.Println("  ✚  healing the partition")
	inj.Heal()

	if !job.WaitSources(time.Minute) {
		log.Fatal("sources never finished")
	}
	if err := job.Stop(time.Minute); err != nil {
		log.Fatal(err)
	}

	var dups, lost int
	mu.Lock()
	for i := 0; i < *n; i++ {
		switch c := seen[int64(i)]; {
		case c == 0:
			lost++
		case c > 1:
			dups += c - 1
		}
	}
	mu.Unlock()
	fmt.Printf("\ndelivered %d/%d packets: %d lost, %d duplicated\n",
		len(seen), *n, lost, dups)
	for _, h := range job.LinkHealth() {
		fmt.Printf("link %s [%s]: %d reconnects, %d frames redelivered, %d shed\n",
			h.Addr, h.State, h.Reconnects, h.Redelivered, h.Shed)
	}
	st := inj.Stats()
	fmt.Printf("injected faults: %d conns cut, %d dials refused\n",
		st.CutConns, st.RefusedDials)
	if lost != 0 || dups != 0 {
		log.Fatal("delivery was not effectively-once")
	}
}
