// Recovery: a three-engine stateful pipeline (sensor → sliding-window
// aggregator → sink) supervised with periodic checkpoints to a file-backed
// store. Mid-stream, the aggregator's engine is killed outright — its
// process state, window contents, and link cursors all die with it. The
// supervisor detects the missed heartbeats, revives the engine, restores
// the newest checkpoint epoch, reconnects the links under a new recovery
// epoch, and replays the retained upstream frames, so the sink still sees
// every packet exactly once with the correct windowed aggregate.
//
//	go run ./examples/recovery [-n 30000]
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sync"
	"time"

	neptune "repro"
	"repro/internal/core"
	"repro/internal/transport"
	"repro/internal/window"
)

const windowSize = 32

// aggregator is the stateful middle stage. Implementing SnapshotState /
// RestoreState opts it into the checkpoint barrier: the supervisor
// captures the window and the input cursor alongside the engine-owned
// dedup and emit cursors.
type aggregator struct {
	win  *window.SlidingCount
	seen int64
}

func (a *aggregator) Open(*neptune.OpContext) error { return nil }
func (a *aggregator) Close() error                  { return nil }

func (a *aggregator) Process(ctx *neptune.OpContext, p *neptune.Packet) error {
	v, err := p.Int64("i")
	if err != nil {
		return err
	}
	a.win.Add(float64(v))
	a.seen++
	out := ctx.NewPacket()
	out.AddInt64("i", v)
	out.AddInt64("seen", a.seen)
	out.AddFloat64("mean", a.win.Mean())
	return ctx.EmitDefault(out)
}

func (a *aggregator) SnapshotState(*neptune.OpContext) ([]byte, error) {
	blob, err := a.win.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return append(binary.AppendVarint(nil, a.seen), blob...), nil
}

func (a *aggregator) RestoreState(_ *neptune.OpContext, state []byte) error {
	seen, n := binary.Varint(state)
	if n <= 0 {
		return errors.New("aggregator: truncated state")
	}
	a.seen = seen
	return a.win.UnmarshalBinary(state[n:])
}

func main() {
	n := flag.Int("n", 30_000, "packets to stream")
	flag.Parse()

	spec, err := neptune.NewGraph("recovery").
		Source("sensor", 1).
		Processor("agg", 1).
		Processor("sink", 1).
		Link("sensor", "agg", "").
		Link("agg", "sink", "").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "neptune-ckpt-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	store, err := neptune.NewFileCheckpointStore(dir, 3)
	if err != nil {
		log.Fatal(err)
	}

	cfg := neptune.DefaultConfig()
	cfg.BufferSize = 4 << 10
	cfg.FlushInterval = time.Millisecond
	// Config.Checkpoint attaches a supervisor automatically at launch:
	// heartbeat crash detection, periodic checkpoints, upstream replay.
	cfg.Checkpoint = neptune.CheckpointConfig{
		Interval: 25 * time.Millisecond,
		Store:    store,
	}

	var engines []*neptune.Engine
	for _, name := range []string{"edge", "mid", "hub"} {
		e, err := neptune.NewEngine(name, cfg)
		if err != nil {
			log.Fatal(err)
		}
		engines = append(engines, e)
	}

	job, err := neptune.NewJob(spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	emitted := 0
	job.SetSource("sensor", func(int) neptune.Source {
		return neptune.SourceFunc(func(ctx *neptune.OpContext) error {
			if emitted >= *n {
				return io.EOF
			}
			if emitted%500 == 499 {
				time.Sleep(time.Millisecond) // keep the stream in flight
			}
			p := ctx.NewPacket()
			p.AddInt64("i", int64(emitted))
			emitted++
			return ctx.EmitDefault(p)
		})
	})
	job.SetProcessor("agg", func(int) neptune.Processor {
		w, err := window.NewSlidingCount(windowSize)
		if err != nil {
			panic(err)
		}
		return &aggregator{win: w}
	})
	var mu sync.Mutex
	seen := make(map[int64]int)
	var badState int
	job.SetProcessor("sink", func(int) neptune.Processor {
		return neptune.ProcessorFunc(func(ctx *neptune.OpContext, p *neptune.Packet) error {
			v, err := p.Int64("i")
			if err != nil {
				return err
			}
			sn, err := p.Int64("seen")
			if err != nil {
				return err
			}
			mu.Lock()
			seen[v]++
			if sn != v+1 {
				badState++ // the aggregator lost its cursor across the crash
			}
			mu.Unlock()
			return nil
		})
	})

	bridger := core.NewResilientTCPBridger(transport.ResilientOptions{
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	})
	place := func(op string, _ int) int {
		switch op {
		case "sensor":
			return 0
		case "agg":
			return 1
		default:
			return 2
		}
	}
	if err := job.LaunchOn(engines, place, bridger); err != nil {
		log.Fatal(err)
	}
	sup := job.Supervisor()
	if sup == nil {
		log.Fatal("Config.Checkpoint should have attached a supervisor")
	}

	progress := func(want int) {
		for {
			mu.Lock()
			got := len(seen)
			mu.Unlock()
			if got >= want {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}

	fmt.Printf("streaming %d packets through a checkpointed 3-engine pipeline...\n", *n)
	progress(*n / 3)
	fmt.Println("  ☠  killing the aggregator's engine (state, windows, cursors all lost)")
	if err := sup.Kill("mid"); err != nil {
		log.Fatal(err)
	}
	for job.RecoveryHealth().Restarts == 0 {
		time.Sleep(time.Millisecond)
	}
	fmt.Println("  ♻  supervisor revived the engine from the latest checkpoint")

	if !job.WaitSources(time.Minute) {
		log.Fatal("sources never finished")
	}
	if err := job.Stop(time.Minute); err != nil {
		log.Fatal(err)
	}

	var dups, lost int
	mu.Lock()
	for i := 0; i < *n; i++ {
		switch c := seen[int64(i)]; {
		case c == 0:
			lost++
		case c > 1:
			dups += c - 1
		}
	}
	bad := badState
	mu.Unlock()
	h := job.RecoveryHealth()
	fmt.Printf("\ndelivered %d/%d packets: %d lost, %d duplicated, %d with stale operator state\n",
		len(seen), *n, lost, dups, bad)
	fmt.Printf("recovery: %d restart(s), %d frames replayed, checkpoint epoch %d (%d bytes), restore took %s\n",
		h.Restarts, h.ReplayedPackets, h.Epoch, h.CheckpointBytes,
		time.Duration(h.RestoreNs).Round(time.Microsecond))
	fmt.Printf("checkpoint store: %d save retries, %d skipped epochs, degraded=%v",
		h.CheckpointRetries, h.SkippedEpochs, h.CheckpointDegraded)
	if h.LastCheckpointErr != "" {
		fmt.Printf(" (last error: %s)", h.LastCheckpointErr)
	}
	fmt.Println()
	if lost != 0 || dups != 0 || bad != 0 {
		log.Fatal("recovery was not exactly-once")
	}
}
