package neptune

import (
	"io"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

// TestWindowedProcessorEndToEnd drives the paper's motivating pattern
// through the public API: a processor computes a sliding-window statistic
// and emits only on significant change, producing a low, variable output
// rate — exactly the stream the buffer's flush timer exists for.
func TestWindowedProcessorEndToEnd(t *testing.T) {
	spec, err := NewGraph("windowed").
		Source("samples", 1).
		Processor("smooth", 1).
		Processor("alerts", 1).
		Link("samples", "smooth", "").
		Link("smooth", "alerts", "").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.FlushInterval = time.Millisecond // low-rate stream: timer flushes
	job, err := NewJob(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Piecewise-constant signal with two level shifts.
	const n = 3_000
	var i atomic.Int64
	job.SetSource("samples", func(int) Source {
		return SourceFunc(func(ctx *OpContext) error {
			v := i.Add(1) - 1
			if v >= n {
				return io.EOF
			}
			level := 10.0
			if v >= 1000 {
				level = 20
			}
			if v >= 2000 {
				level = 5
			}
			p := ctx.NewPacket()
			p.AddInt64("i", v)
			p.AddFloat64("x", level+0.1*math.Sin(float64(v)))
			return ctx.EmitDefault(p)
		})
	})

	job.SetProcessor("smooth", func(int) Processor {
		det, err := NewChangeDetector(50, 0.10)
		if err != nil {
			t.Error(err)
			return ProcessorFunc(func(*OpContext, *Packet) error { return err })
		}
		return ProcessorFunc(func(ctx *OpContext, p *Packet) error {
			x, err := p.Float64("x")
			if err != nil {
				return err
			}
			mean, significant := det.Observe(x)
			if !significant {
				return nil
			}
			out := ctx.NewPacket()
			out.AddFloat64("mean", mean)
			return ctx.EmitDefault(out)
		})
	})

	var alerts atomic.Int64
	job.SetProcessor("alerts", func(int) Processor {
		return ProcessorFunc(func(ctx *OpContext, p *Packet) error {
			if _, err := p.Float64("mean"); err != nil {
				return err
			}
			alerts.Add(1)
			return nil
		})
	})
	if err := Run(job, 30*time.Second, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	// Exactly the level shifts (plus the initial emission) should fire:
	// 3 emissions, maybe a couple extra during transitions — but far,
	// far fewer than n.
	emitted := alerts.Load()
	if emitted < 3 {
		t.Fatalf("change detector missed level shifts: %d emissions", emitted)
	}
	if emitted > 20 {
		t.Fatalf("change detector too chatty: %d emissions for 2 level shifts", emitted)
	}
}
