// Package neptune is the public API of the NEPTUNE stream-processing
// framework reproduction (Buddhika & Pallickara, IPDPS 2016): real-time,
// high-throughput stream processing for IoT and sensing environments.
//
// A stream processing job is described as a graph of stream operators —
// sources that ingest external streams and processors that transform
// them — connected by links, each link carrying a stream partitioning
// scheme. At runtime the framework provides the paper's full optimization
// set: application-level buffering sized in bytes with timer-bounded
// flushes, batched scheduling on a two-tier worker/IO thread model, object
// reuse, watermark backpressure that throttles upstream stages through
// the transport, and entropy-gated compression.
//
// Quick start:
//
//	spec, _ := neptune.NewGraph("wordcount").
//		Source("lines", 1).
//		Processor("split", 4).
//		Processor("count", 4).
//		Link("lines", "split", "shuffle").
//		Link("split", "count", "fields:word").
//		Build()
//
//	job, _ := neptune.NewJob(spec, neptune.DefaultConfig())
//	job.SetSource("lines", func(i int) neptune.Source { ... })
//	job.SetProcessor("split", func(i int) neptune.Processor { ... })
//	job.SetProcessor("count", func(i int) neptune.Processor { ... })
//	job.Launch()
//	defer job.Stop(10 * time.Second)
//
// See the examples directory for complete programs, and DESIGN.md for the
// system inventory and the mapping from the paper's experiments to this
// repository's benchmarks.
package neptune

import (
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/packet"
)

// Re-exported core types. The engine lives in internal/core; these
// aliases are the supported public surface.
type (
	// Config carries a job's tuning knobs; see DefaultConfig.
	Config = core.Config
	// Job is a deployed stream processing graph.
	Job = core.Job
	// Engine is one NEPTUNE resource (container for operator instances).
	Engine = core.Engine
	// Source ingests an external stream (paper §III-A2).
	Source = core.Source
	// Processor transforms stream packets (paper §III-A3).
	Processor = core.Processor
	// SourceFactory builds one Source per parallel instance.
	SourceFactory = core.SourceFactory
	// ProcessorFactory builds one Processor per parallel instance.
	ProcessorFactory = core.ProcessorFactory
	// SourceFunc adapts a function to Source.
	SourceFunc = core.SourceFunc
	// ProcessorFunc adapts a function to Processor.
	ProcessorFunc = core.ProcessorFunc
	// OpContext is the per-instance execution context.
	OpContext = core.OpContext
	// Packet is a stream packet: typed fields plus routing metadata.
	Packet = packet.Packet
	// Bridger connects engines with transports for multi-engine jobs.
	Bridger = core.Bridger
	// Placement assigns operator instances to engines.
	Placement = core.Placement
	// GraphSpec is a declarative stream-processing-graph description.
	GraphSpec = graph.Spec
	// OperatorSpec declares one logical operator.
	OperatorSpec = graph.OperatorSpec
	// LinkSpec declares one data-flow edge.
	LinkSpec = graph.LinkSpec
	// Partitioner routes packets to destination instances.
	Partitioner = graph.Partitioner
	// TickingProcessor is a Processor also scheduled periodically
	// (Granules' combined strategy) — implement it to emit on time even
	// when a stream goes quiet.
	TickingProcessor = core.TickingProcessor
	// StatefulProcessor is a Processor whose state the checkpointing
	// supervisor captures and restores around a crash — implement it for
	// effectively-once recovery of windowed/stateful operators.
	StatefulProcessor = core.StatefulProcessor
	// CheckpointConfig configures crash recovery (Config.Checkpoint); the
	// zero value disables it.
	CheckpointConfig = core.CheckpointConfig
	// MembershipConfig configures the cluster-membership layer
	// (Config.Membership); the zero value disables it.
	MembershipConfig = core.MembershipConfig
	// MembershipHealth aggregates a job's membership counters; see
	// Job.MembershipHealth.
	MembershipHealth = core.MembershipHealth
	// SupervisorOptions tunes a manually attached supervisor.
	SupervisorOptions = core.SupervisorOptions
	// Supervisor drives checkpointing and supervised restart for a job.
	Supervisor = core.Supervisor
	// RecoveryHealth aggregates a job's crash-recovery counters.
	RecoveryHealth = core.RecoveryHealth
	// FlowHealth aggregates a job's flow-control and control-plane
	// counters (valve closures, watermark advertisements, source holds);
	// see Job.FlowHealth and Config.FlowSignals.
	FlowHealth = core.FlowHealth
	// LatencyHealth aggregates the adaptive QoS runtime's state —
	// per-link smoothed p50/p99, tuning levels, operator-chaining
	// activity, controller action tallies; see Job.LatencyHealth and
	// Config.LatencyTarget.
	LatencyHealth = core.LatencyHealth
	// LinkLatency is one link's entry in a LatencyHealth snapshot.
	LinkLatency = core.LinkLatency
	// CheckpointStore persists encoded checkpoint snapshots.
	CheckpointStore = checkpoint.Store
)

// NewMemCheckpointStore returns an in-memory checkpoint store retaining
// the newest retain epochs (<= 0 selects the default).
func NewMemCheckpointStore(retain int) CheckpointStore { return checkpoint.NewMemStore(retain) }

// NewFileCheckpointStore returns a file-backed checkpoint store in dir,
// written atomically, retaining the newest retain epochs.
func NewFileCheckpointStore(dir string, retain int) (CheckpointStore, error) {
	return checkpoint.NewFileStore(dir, retain)
}

// Throttle wraps a source so it emits at most rate packets/second with
// the given burst — offered-load sources, as IoT gateways behave.
func Throttle(rate float64, burst int, s Source) Source {
	return core.Throttle(rate, burst, s)
}

// Operator kinds for GraphSpec.
const (
	KindSource    = graph.KindSource
	KindProcessor = graph.KindProcessor
)

// DefaultConfig returns the paper's default configuration: 1 MB buffers,
// a 10 ms flush bound, batching and pooling enabled, compression off.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewJob creates an undeployed job for the given graph and config. The
// spec is normalized and validated.
func NewJob(spec *GraphSpec, cfg Config) (*Job, error) { return core.NewJob(spec, cfg) }

// NewEngine creates an engine (one per process/node) for multi-engine
// deployments via Job.LaunchOn.
func NewEngine(name string, cfg Config) (*Engine, error) { return core.NewEngine(name, cfg) }

// NewInprocBridger connects engines within one process through bounded
// in-memory queues. Zero watermarks default to 512 KiB / 1 MiB.
func NewInprocBridger(low, high int64) Bridger { return core.NewInprocBridger(low, high) }

// LoadGraph parses and validates a JSON graph descriptor file
// (paper §III-A7).
func LoadGraph(path string) (*GraphSpec, error) { return graph.LoadDescriptor(path) }

// RegisterPartitioner installs a custom stream partitioning scheme
// (paper §III-A6) usable from LinkSpec.Partitioner as "name" or
// "name:argument".
func RegisterPartitioner(name string, f func(arg string) (Partitioner, error)) error {
	return graph.RegisterPartitioner(name, graph.Factory(f))
}

// Run is a convenience wrapper: launch the job, wait for its sources to
// finish (bounded by sourceTimeout), then drain and stop. Suitable for
// finite-stream jobs; long-running services should call Launch/Stop
// directly.
func Run(job *Job, sourceTimeout, stopTimeout time.Duration) error {
	if err := job.Launch(); err != nil {
		return err
	}
	job.WaitSources(sourceTimeout)
	return job.Stop(stopTimeout)
}
