package neptune

import "repro/internal/graph"

// GraphBuilder assembles a GraphSpec fluently. Errors are deferred to
// Build so call chains stay clean.
type GraphBuilder struct {
	spec graph.Spec
}

// NewGraph starts a builder for a job named name.
func NewGraph(name string) *GraphBuilder {
	return &GraphBuilder{spec: graph.Spec{Name: name}}
}

// Source declares a stream source with the given parallelism (0 means 1).
func (b *GraphBuilder) Source(name string, parallelism int) *GraphBuilder {
	b.spec.Operators = append(b.spec.Operators, graph.OperatorSpec{
		Name: name, Kind: graph.KindSource, Parallelism: parallelism,
	})
	return b
}

// Processor declares a stream processor with the given parallelism
// (0 means 1).
func (b *GraphBuilder) Processor(name string, parallelism int) *GraphBuilder {
	b.spec.Operators = append(b.spec.Operators, graph.OperatorSpec{
		Name: name, Kind: graph.KindProcessor, Parallelism: parallelism,
	})
	return b
}

// Link connects from -> to with the named partitioning scheme ("" means
// shuffle). The link's name defaults to "from->to".
func (b *GraphBuilder) Link(from, to, partitioner string) *GraphBuilder {
	b.spec.Links = append(b.spec.Links, graph.LinkSpec{
		From: from, To: to, Partitioner: partitioner,
	})
	return b
}

// NamedLink is Link with an explicit link name, for operators that emit on
// multiple outgoing links via OpContext.Emit(name, p).
func (b *GraphBuilder) NamedLink(name, from, to, partitioner string) *GraphBuilder {
	b.spec.Links = append(b.spec.Links, graph.LinkSpec{
		Name: name, From: from, To: to, Partitioner: partitioner,
	})
	return b
}

// Build normalizes and validates the graph.
func (b *GraphBuilder) Build() (*GraphSpec, error) {
	spec := b.spec // copy: the builder can keep being used
	spec.Operators = append([]graph.OperatorSpec(nil), b.spec.Operators...)
	spec.Links = append([]graph.LinkSpec(nil), b.spec.Links...)
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}
