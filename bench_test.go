package neptune

// Benchmarks regenerating the paper's tables and figures. Each benchmark
// corresponds to one artifact of the evaluation section (see DESIGN.md §4
// for the experiment index); `go test -bench=. -benchmem` prints the same
// quantities the paper plots as custom metrics.
//
// Real-engine benchmarks (Fig. 2 measured columns, Table I, object reuse,
// Fig. 4, compression, headline single node) drive the actual engine for a
// fixed window per iteration and report pkts/s; cluster benchmarks
// (Figs. 5, 6, 7, 9, 10, headline cluster numbers) run the testbed model.

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
)

// benchWindow is the measurement window per real-engine iteration.
const benchWindow = 300 * time.Millisecond

// runRelayBench runs the relay b.N times and reports packet throughput.
func runRelayBench(b *testing.B, cfg experiments.RelayConfig) {
	b.Helper()
	cfg.Duration = benchWindow
	var pkts, ns float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunRelay(cfg)
		if err != nil {
			b.Fatal(err)
		}
		pkts += float64(res.Received)
		ns += float64(res.Elapsed.Nanoseconds())
		b.ReportMetric(float64(res.P50Latency.Microseconds()), "p50-lat-µs")
		b.ReportMetric(float64(res.P99Latency.Microseconds()), "p99-lat-µs")
	}
	b.ReportMetric(pkts/(ns/1e9), "pkts/s")
}

// BenchmarkFig2BufferSweep regenerates Figure 2's measured columns:
// relay throughput versus application-level buffer size for two
// representative message sizes.
func BenchmarkFig2BufferSweep(b *testing.B) {
	for _, msg := range []int{50, 1024} {
		for _, buf := range experiments.Fig2BufferSizes {
			b.Run(fmt.Sprintf("msg=%dB/buffer=%dKB", msg, buf>>10), func(b *testing.B) {
				runRelayBench(b, experiments.RelayConfig{
					MsgBytes:    msg,
					BufferBytes: buf,
					Batching:    true,
					Pooling:     true,
				})
			})
		}
	}
}

// BenchmarkTable1ContextSwitches regenerates Table I: context-switch
// equivalents per 5 seconds under batched vs. per-message scheduling.
func BenchmarkTable1ContextSwitches(b *testing.B) {
	for _, batched := range []bool{true, false} {
		name := "batched"
		if !batched {
			name = "individual"
		}
		b.Run(name, func(b *testing.B) {
			var switches, seconds float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunRelay(experiments.RelayConfig{
					MsgBytes:    50,
					BufferBytes: 1 << 20,
					Batching:    batched,
					Pooling:     true,
					Duration:    benchWindow,
				})
				if err != nil {
					b.Fatal(err)
				}
				switches += float64(res.Switches)
				seconds += res.Elapsed.Seconds()
			}
			b.ReportMetric(switches/seconds*5, "switches/5s")
		})
	}
}

// BenchmarkObjectReuse regenerates the §III-B3 result: allocation pressure
// with and without pooling (allocs/op from -benchmem tells the story).
func BenchmarkObjectReuse(b *testing.B) {
	for _, pooled := range []bool{true, false} {
		name := "pooled"
		if !pooled {
			name = "unpooled"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			runRelayBench(b, experiments.RelayConfig{
				MsgBytes:    50,
				BufferBytes: 1 << 20,
				Batching:    true,
				Pooling:     pooled,
			})
		})
	}
}

// BenchmarkFig4Backpressure regenerates Figure 4's mechanism: relay
// throughput with the sink sleeping per packet. Throughput must track the
// inverse of the sink delay.
func BenchmarkFig4Backpressure(b *testing.B) {
	for _, sleepMs := range []int64{0, 1, 2, 3} {
		b.Run(fmt.Sprintf("sink-sleep=%dms", sleepMs), func(b *testing.B) {
			var delay atomic.Int64
			delay.Store(sleepMs * int64(time.Millisecond))
			runRelayBench(b, experiments.RelayConfig{
				MsgBytes:    100,
				BufferBytes: 4 << 10,
				Batching:    true,
				Pooling:     true,
				SinkDelayNs: &delay,
				// A permanently slow sink turns standing queues into
				// drain time; small watermarks keep Stop prompt.
				InLowWatermark:   8 << 10,
				InHighWatermark:  16 << 10,
				OutLowWatermark:  8 << 10,
				OutHighWatermark: 16 << 10,
			})
		})
	}
}

// BenchmarkCompression regenerates the §III-B5 study: relay throughput on
// sensor vs. random data with compression off / always / selective.
func BenchmarkCompression(b *testing.B) {
	modes := []struct {
		name   string
		thresh float64
	}{{"off", 0}, {"always", 8}, {"selective", 6.5}}
	for _, dataset := range []string{"sensor", "random"} {
		for _, m := range modes {
			b.Run(dataset+"/"+m.name, func(b *testing.B) {
				cfg := experiments.RelayConfig{
					MsgBytes:             330,
					BufferBytes:          64 << 10,
					Batching:             true,
					Pooling:              true,
					CompressionThreshold: m.thresh,
				}
				if dataset == "sensor" {
					cfg.Payload = experiments.SensorPayload()
				} else {
					cfg.Payload = experiments.RandomPayload()
				}
				runRelayBench(b, cfg)
			})
		}
	}
}

// solveBench runs a cluster-model scenario once per iteration and reports
// cumulative throughput.
func solveBench(b *testing.B, nodes int, mkJobs func() []cluster.JobSpec) {
	b.Helper()
	var cum float64
	for i := 0; i < b.N; i++ {
		c := cluster.New(nodes)
		res, _, err := c.Solve(mkJobs(), time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		cum = 0
		for _, r := range res {
			cum += r.Throughput
		}
	}
	b.ReportMetric(cum, "cum-pkts/s")
}

// BenchmarkFig5JobScaling regenerates Figure 5: cumulative throughput at
// three operating points — underprovisioned, peak, overprovisioned.
func BenchmarkFig5JobScaling(b *testing.B) {
	for _, jobs := range []int{10, 50, 100} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			solveBench(b, 50, func() []cluster.JobSpec {
				specs := make([]cluster.JobSpec, jobs)
				for i := range specs {
					specs[i] = cluster.AllPairsJob(cluster.Neptune, 50, 128, 1<<20)
				}
				return specs
			})
		})
	}
}

// BenchmarkFig6NodeScaling regenerates Figure 6: 50 jobs, growing cluster.
func BenchmarkFig6NodeScaling(b *testing.B) {
	for _, nodes := range []int{10, 25, 50} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			n := nodes
			solveBench(b, n, func() []cluster.JobSpec {
				specs := make([]cluster.JobSpec, 50)
				for i := range specs {
					specs[i] = cluster.AllPairsJob(cluster.Neptune, n, 128, 1<<20)
				}
				return specs
			})
		})
	}
}

// BenchmarkFig7VsStorm regenerates Figure 7: relay throughput per engine
// and message size on the testbed model.
func BenchmarkFig7VsStorm(b *testing.B) {
	for _, engine := range []cluster.EngineKind{cluster.Neptune, cluster.Storm} {
		for _, msg := range []int{50, 1024, 10240} {
			eng := engine
			b.Run(fmt.Sprintf("%s/msg=%dB", engine, msg), func(b *testing.B) {
				m := msg
				solveBench(b, 2, func() []cluster.JobSpec {
					return []cluster.JobSpec{cluster.RelayJob(eng, m, 1<<20, 0, 1)}
				})
			})
		}
	}
}

// BenchmarkFig9Manufacturing regenerates Figure 9: the manufacturing
// monitoring job's cumulative throughput per engine at 32 jobs.
func BenchmarkFig9Manufacturing(b *testing.B) {
	for _, engine := range []cluster.EngineKind{cluster.Neptune, cluster.Storm} {
		eng := engine
		b.Run(engine.String(), func(b *testing.B) {
			solveBench(b, 50, func() []cluster.JobSpec {
				specs := make([]cluster.JobSpec, 32)
				for i := range specs {
					specs[i] = cluster.ManufacturingJob(eng, 50, i)
				}
				return specs
			})
		})
	}
}

// BenchmarkFig10Resources regenerates Figure 10: per-node CPU cores used
// at the 50-jobs-on-50-nodes operating point.
func BenchmarkFig10Resources(b *testing.B) {
	for _, engine := range []cluster.EngineKind{cluster.Neptune, cluster.Storm} {
		eng := engine
		b.Run(engine.String(), func(b *testing.B) {
			var meanCPU float64
			for i := 0; i < b.N; i++ {
				c := cluster.New(50)
				specs := make([]cluster.JobSpec, 50)
				for j := range specs {
					specs[j] = cluster.ManufacturingJob(eng, 50, j)
				}
				_, stats, err := c.Solve(specs, time.Minute)
				if err != nil {
					b.Fatal(err)
				}
				var sum float64
				for _, v := range stats.CPUUsed {
					sum += v
				}
				meanCPU = sum / 50
			}
			b.ReportMetric(meanCPU, "cpu-cores/node")
		})
	}
}

// BenchmarkHeadlineSingleNode measures the real engine's relay throughput
// with the paper's default configuration (1 MB buffers, 50 B messages) —
// the in-process counterpart of the paper's ~2M packets/s single-node
// headline.
func BenchmarkHeadlineSingleNode(b *testing.B) {
	runRelayBench(b, experiments.RelayConfig{
		MsgBytes:    50,
		BufferBytes: 1 << 20,
		Batching:    true,
		Pooling:     true,
	})
}

// BenchmarkHeadlineMulticore sweeps the lane-sharded engine (DESIGN.md
// §13): the headline relay with the engine split into per-core lanes and
// a matching relay/receiver parallelism, so each lane runs an independent
// pipeline slice. On a multi-core host throughput should scale near
// linearly with lanes until cores run out; on fewer cores the sweep
// degenerates gracefully (same work, time-sliced).
func BenchmarkHeadlineMulticore(b *testing.B) {
	for _, lanes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			b.ReportAllocs()
			runRelayBench(b, experiments.RelayConfig{
				MsgBytes:    50,
				BufferBytes: 1 << 20,
				Batching:    true,
				Pooling:     true,
				Lanes:       lanes,
				Parallelism: lanes,
			})
		})
	}
}

// BenchmarkLatencyTargetSweep measures the adaptive QoS runtime
// (DESIGN.md §16) on an offered-load relay: an IoT-gateway-style source
// pushes 200k pkts/s through deliberately latency-hostile static knobs
// (1 MB buffers, 50 ms flush timer). Untargeted, the batching delay
// dominates end-to-end p99; with a latency target the controller halves
// the capacity and flush bounds per hop until each link's share of the
// end-to-end budget is met. p50/p99 and controller activity are
// recorded alongside pkts/s. Runs are longer than the usual bench
// window so the controller's convergence transient does not dominate
// the latency distribution. (The saturation throughput headline is
// BenchmarkHeadlineSingleNode; an offered-load job is used here because
// no batching knob can tune away a saturated pipeline's standing
// queues.)
func BenchmarkLatencyTargetSweep(b *testing.B) {
	for _, target := range []time.Duration{0, 50 * time.Millisecond, 10 * time.Millisecond} {
		name := "untargeted"
		if target > 0 {
			name = "target=" + target.String()
		}
		tgt := target
		b.Run(name, func(b *testing.B) {
			var pkts, ns float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunRelay(experiments.RelayConfig{
					MsgBytes:      50,
					BufferBytes:   1 << 20,
					FlushInterval: 50 * time.Millisecond,
					Batching:      true,
					Pooling:       true,
					Duration:      20 * time.Second,
					RateLimit:     200_000,
					LatencyTarget: tgt,
					QoSTick:       5 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				pkts += float64(res.Received)
				ns += float64(res.Elapsed.Nanoseconds())
				b.ReportMetric(float64(res.P50Latency.Microseconds()), "p50-lat-µs")
				b.ReportMetric(float64(res.P99Latency.Microseconds()), "p99-lat-µs")
				b.ReportMetric(float64(res.QoSEscalations), "escalations")
				b.ReportMetric(float64(res.ChainedLinks), "chained-links")
			}
			b.ReportMetric(pkts/(ns/1e9), "pkts/s")
		})
	}
}

// BenchmarkHeadlineCluster solves the 50-node relay fleet (the ~100M
// packets/s headline) on the testbed model.
func BenchmarkHeadlineCluster(b *testing.B) {
	solveBench(b, 50, func() []cluster.JobSpec {
		specs := make([]cluster.JobSpec, 50)
		for i := range specs {
			specs[i] = cluster.RelayJob(cluster.Neptune, 50, 1<<20, i, (i+1)%50)
		}
		return specs
	})
}
